//! Aggregate functions over value sets.
//!
//! The paper focuses on non-aggregate subqueries, but its closing
//! discussion (and the companion "Boolean aggregates" work it cites) notes
//! the nested relational machinery extends to aggregate subqueries
//! naturally: per outer tuple the subquery still yields a *set*, and an
//! aggregate linking predicate `A θ agg{B}` simply folds the set before
//! the comparison instead of quantifying over it. This module provides the
//! fold with standard SQL semantics:
//!
//! * `MIN`/`MAX`/`SUM`/`AVG` skip NULL inputs and return NULL on an empty
//!   (post-skip) set;
//! * `COUNT(*)` counts rows, `COUNT(col)` counts non-NULL values; both
//!   return 0 — not NULL — on the empty set (the classical "count bug"
//!   pitfall of unnesting rewrites).

use crate::value::Value;

/// An SQL aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Min,
    Max,
    Sum,
    Avg,
    /// `COUNT(*)`.
    CountRows,
    /// `COUNT(col)` — non-NULL values only.
    CountNonNull,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::CountRows | AggFunc::CountNonNull => "count",
        }
    }

    /// Does this aggregate take a column argument (`false` for
    /// `COUNT(*)`)?
    pub fn takes_argument(self) -> bool {
        self != AggFunc::CountRows
    }
}

/// Numeric accumulator that stays exact for homogeneous Int/Decimal input
/// and degrades to float otherwise.
enum NumAcc {
    Int(i64),
    Decimal(i64),
    Float(f64),
}

impl NumAcc {
    fn add(self, v: &Value) -> Option<NumAcc> {
        Some(match (self, v) {
            (NumAcc::Int(a), Value::Int(b)) => NumAcc::Int(a + b),
            (NumAcc::Decimal(a), Value::Decimal(b)) => NumAcc::Decimal(a + b),
            (NumAcc::Int(a), Value::Decimal(b)) => NumAcc::Decimal(a * 100 + b),
            (NumAcc::Decimal(a), Value::Int(b)) => NumAcc::Decimal(a + b * 100),
            (acc, Value::Float(b)) => NumAcc::Float(acc.as_f64() + b),
            (NumAcc::Float(a), Value::Int(b)) => NumAcc::Float(a + *b as f64),
            (NumAcc::Float(a), Value::Decimal(b)) => NumAcc::Float(a + *b as f64 / 100.0),
            _ => return None,
        })
    }

    fn as_f64(&self) -> f64 {
        match self {
            NumAcc::Int(a) => *a as f64,
            NumAcc::Decimal(a) => *a as f64 / 100.0,
            NumAcc::Float(a) => *a,
        }
    }

    fn into_value(self) -> Value {
        match self {
            NumAcc::Int(a) => Value::Int(a),
            NumAcc::Decimal(a) => Value::Decimal(a),
            NumAcc::Float(a) => Value::Float(a),
        }
    }
}

/// Fold `values` with `func` under SQL semantics. Non-numeric inputs to
/// `SUM`/`AVG` yield NULL; `MIN`/`MAX` use SQL comparison (and also work
/// on strings and dates).
pub fn aggregate<'a>(func: AggFunc, values: impl Iterator<Item = &'a Value>) -> Value {
    match func {
        AggFunc::CountRows => Value::Int(values.count() as i64),
        AggFunc::CountNonNull => Value::Int(values.filter(|v| !v.is_null()).count() as i64),
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&Value> = None;
            for v in values.filter(|v| !v.is_null()) {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.sql_cmp(b) {
                        Some(std::cmp::Ordering::Less) if func == AggFunc::Min => v,
                        Some(std::cmp::Ordering::Greater) if func == AggFunc::Max => v,
                        _ => b,
                    },
                });
            }
            best.cloned().unwrap_or(Value::Null)
        }
        AggFunc::Sum | AggFunc::Avg => {
            let mut acc: Option<NumAcc> = None;
            let mut count = 0i64;
            for v in values.filter(|v| !v.is_null()) {
                count += 1;
                let cur = match acc.take() {
                    None => NumAcc::Int(0).add(v),
                    Some(a) => a.add(v),
                };
                match cur {
                    Some(a) => acc = Some(a),
                    None => return Value::Null, // non-numeric input
                }
            }
            match (func, acc) {
                (_, None) => Value::Null, // empty set
                (AggFunc::Sum, Some(a)) => a.into_value(),
                (AggFunc::Avg, Some(a)) => match a {
                    NumAcc::Decimal(d) => Value::Decimal(d / count),
                    other => Value::Float(other.as_f64() / count as f64),
                },
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[Value]) -> impl Iterator<Item = &Value> {
        v.iter()
    }

    #[test]
    fn min_max_skip_nulls() {
        let v = [Value::Int(3), Value::Null, Value::Int(1), Value::Int(2)];
        assert_eq!(aggregate(AggFunc::Min, vals(&v)), Value::Int(1));
        assert_eq!(aggregate(AggFunc::Max, vals(&v)), Value::Int(3));
    }

    #[test]
    fn empty_set_semantics() {
        let empty: [Value; 0] = [];
        assert_eq!(aggregate(AggFunc::Min, vals(&empty)), Value::Null);
        assert_eq!(aggregate(AggFunc::Sum, vals(&empty)), Value::Null);
        assert_eq!(aggregate(AggFunc::Avg, vals(&empty)), Value::Null);
        assert_eq!(aggregate(AggFunc::CountRows, vals(&empty)), Value::Int(0));
        assert_eq!(
            aggregate(AggFunc::CountNonNull, vals(&empty)),
            Value::Int(0)
        );
        // all-NULL input behaves like empty for everything but COUNT(*).
        let nulls = [Value::Null, Value::Null];
        assert_eq!(aggregate(AggFunc::Max, vals(&nulls)), Value::Null);
        assert_eq!(aggregate(AggFunc::CountRows, vals(&nulls)), Value::Int(2));
        assert_eq!(
            aggregate(AggFunc::CountNonNull, vals(&nulls)),
            Value::Int(0)
        );
    }

    #[test]
    fn sum_stays_exact_for_ints_and_decimals() {
        let ints = [Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(aggregate(AggFunc::Sum, vals(&ints)), Value::Int(6));
        let decs = [Value::Decimal(150), Value::Decimal(250)];
        assert_eq!(aggregate(AggFunc::Sum, vals(&decs)), Value::Decimal(400));
        let mixed = [Value::Int(1), Value::Decimal(250)];
        assert_eq!(aggregate(AggFunc::Sum, vals(&mixed)), Value::Decimal(350));
    }

    #[test]
    fn avg_types() {
        let ints = [Value::Int(1), Value::Int(2)];
        assert_eq!(aggregate(AggFunc::Avg, vals(&ints)), Value::Float(1.5));
        let decs = [Value::Decimal(100), Value::Decimal(200)];
        assert_eq!(aggregate(AggFunc::Avg, vals(&decs)), Value::Decimal(150));
    }

    #[test]
    fn sum_of_floats() {
        let v = [Value::Float(0.5), Value::Int(1)];
        assert_eq!(aggregate(AggFunc::Sum, vals(&v)), Value::Float(1.5));
    }

    #[test]
    fn non_numeric_sum_is_null() {
        let v = [Value::str("x")];
        assert_eq!(aggregate(AggFunc::Sum, vals(&v)), Value::Null);
    }

    #[test]
    fn min_max_on_strings_and_dates() {
        let s = [Value::str("b"), Value::str("a")];
        assert_eq!(aggregate(AggFunc::Min, vals(&s)), Value::str("a"));
        let d = [Value::Date(10), Value::Date(20)];
        assert_eq!(aggregate(AggFunc::Max, vals(&d)), Value::Date(20));
    }
}
