//! Disk I/O simulation: pages, a buffer cache, and sequential/random
//! access accounting.
//!
//! The paper's evaluation ran against a 1 GB disk-resident TPC-H database
//! with a 32 MB buffer cache; the decisive cost of System A's nested
//! iteration plans is *random* page I/O (index probes per outer tuple),
//! while the nested relational plans pay *sequential* scans. A pure
//! in-memory reproduction hides that difference entirely, so this module
//! simulates it: executors charge page accesses to a thread-local
//! simulator holding an LRU buffer pool, and the benchmark harness
//! converts the counters into estimated elapsed time with documented
//! device parameters.
//!
//! The simulator is disabled by default (zero overhead beyond one
//! thread-local check); correctness tests never enable it.

use std::cell::RefCell;
use std::collections::HashMap;

/// Cost-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct IoConfig {
    /// Page size in bytes (default 8 KiB).
    pub page_bytes: usize,
    /// Buffer-pool capacity in pages.
    pub cache_pages: usize,
    /// Sequential read cost per page, in milliseconds.
    pub seq_ms_per_page: f64,
    /// Random read cost per page miss, in milliseconds.
    pub rand_ms_per_page: f64,
}

impl Default for IoConfig {
    fn default() -> IoConfig {
        IoConfig {
            page_bytes: 8192,
            cache_pages: 4096, // 32 MiB
            // ~80 MB/s sequential and ~6 ms seek+rotate: the 2004-era SCSI
            // disk of the paper's testbed.
            seq_ms_per_page: 0.1,
            rand_ms_per_page: 6.0,
        }
    }
}

/// Access counters accumulated while the simulator is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    pub seq_pages: u64,
    pub rand_hits: u64,
    pub rand_misses: u64,
}

impl IoStats {
    /// Estimated elapsed seconds under `cfg`.
    pub fn estimated_secs(&self, cfg: &IoConfig) -> f64 {
        (self.seq_pages as f64 * cfg.seq_ms_per_page
            + self.rand_misses as f64 * cfg.rand_ms_per_page)
            / 1000.0
    }

    pub fn total_random(&self) -> u64 {
        self.rand_hits + self.rand_misses
    }
}

/// Bytes a stored row of `n_cols` columns occupies in the model (a rough
/// 16 bytes per attribute, in line with TPC-H's ~120-byte lineitem rows).
pub const BYTES_PER_COL: usize = 16;

/// Pages occupied by a table of `rows` rows and `cols` columns.
pub fn table_pages(rows: usize, cols: usize, cfg: &IoConfig) -> u64 {
    let row_bytes = (cols.max(1)) * BYTES_PER_COL;
    let rows_per_page = (cfg.page_bytes / row_bytes).max(1);
    rows.div_ceil(rows_per_page).max(1) as u64
}

/// Rows per page for a table of `cols` columns.
pub fn rows_per_page(cols: usize, cfg: &IoConfig) -> usize {
    (cfg.page_bytes / ((cols.max(1)) * BYTES_PER_COL)).max(1)
}

// ---- LRU buffer pool ------------------------------------------------------

struct Lru {
    capacity: usize,
    map: HashMap<u64, usize>,
    // Doubly linked list over slot indices; slot 0..len map to entries.
    pages: Vec<u64>,
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
}

const NIL: usize = usize::MAX;

impl Lru {
    fn new(capacity: usize) -> Lru {
        Lru {
            capacity: capacity.max(1),
            map: HashMap::new(),
            pages: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.prev[i] = NIL;
        self.next[i] = self.head;
        if self.head != NIL {
            self.prev[self.head] = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Touch a page: returns true on hit.
    fn access(&mut self, page: u64) -> bool {
        if let Some(&i) = self.map.get(&page) {
            self.unlink(i);
            self.push_front(i);
            return true;
        }
        if self.map.len() < self.capacity {
            let i = self.pages.len();
            self.pages.push(page);
            self.prev.push(NIL);
            self.next.push(NIL);
            self.map.insert(page, i);
            self.push_front(i);
        } else {
            // Evict the least-recently-used slot and reuse it.
            let i = self.tail;
            self.unlink(i);
            let old = self.pages[i];
            self.map.remove(&old);
            self.pages[i] = page;
            self.map.insert(page, i);
            self.push_front(i);
        }
        false
    }
}

// ---- thread-local simulator ------------------------------------------------

struct Sim {
    cfg: IoConfig,
    lru: Lru,
    stats: IoStats,
    table_ids: HashMap<String, u64>,
}

thread_local! {
    static SIM: RefCell<Option<Sim>> = const { RefCell::new(None) };
}

/// Enable the simulator on this thread with a cold cache.
pub fn enable(cfg: IoConfig) {
    SIM.with(|s| {
        *s.borrow_mut() = Some(Sim {
            lru: Lru::new(cfg.cache_pages),
            cfg,
            stats: IoStats::default(),
            table_ids: HashMap::new(),
        });
    });
}

/// Disable the simulator, returning the accumulated stats.
pub fn disable() -> Option<IoStats> {
    SIM.with(|s| s.borrow_mut().take().map(|sim| sim.stats))
}

/// Whether the simulator is currently enabled on this thread.
pub fn is_enabled() -> bool {
    SIM.with(|s| s.borrow().is_some())
}

/// Reset counters (keeping the warm cache) and return the previous stats.
pub fn take_stats() -> IoStats {
    SIM.with(|s| {
        let mut b = s.borrow_mut();
        match b.as_mut() {
            Some(sim) => std::mem::take(&mut sim.stats),
            None => IoStats::default(),
        }
    })
}

/// Current counters without resetting.
pub fn stats() -> IoStats {
    SIM.with(|s| s.borrow().as_ref().map(|sim| sim.stats).unwrap_or_default())
}

fn with_sim(f: impl FnOnce(&mut Sim)) {
    SIM.with(|s| {
        if let Some(sim) = s.borrow_mut().as_mut() {
            f(sim);
        }
    });
}

fn page_key(sim: &mut Sim, table: &str, page: u64) -> u64 {
    let next = sim.table_ids.len() as u64 + 1;
    let id = *sim.table_ids.entry(table.to_string()).or_insert(next);
    (id << 40) | (page & 0xFF_FFFF_FFFF)
}

/// Charge a full sequential scan of a table with `rows` rows of `cols`
/// columns. Sequential scans bypass the buffer pool (the paper flushed
/// the cache between runs; large scans would thrash it anyway).
pub fn charge_seq_scan(rows: usize, cols: usize) {
    with_sim(|sim| {
        sim.stats.seq_pages += table_pages(rows, cols, &sim.cfg);
    });
}

/// Charge a random access to row `row_id` of `table` (with `cols`
/// columns): one page read through the buffer pool.
pub fn charge_random_row(table: &str, cols: usize, row_id: usize) {
    with_sim(|sim| {
        let rpp = rows_per_page(cols, &sim.cfg);
        let page = (row_id / rpp) as u64;
        let key = page_key(sim, table, page);
        if sim.lru.access(key) {
            sim.stats.rand_hits += 1;
        } else {
            sim.stats.rand_misses += 1;
        }
    });
}

/// Charge an index probe on a secondary index over `table` holding
/// `n_entries` keys: one random leaf/bucket page (interior nodes assumed
/// cached), selected by the probe key's hash.
pub fn charge_index_probe(table: &str, n_entries: usize, bucket: u64) {
    with_sim(|sim| {
        // ~16 bytes per index entry.
        let entries_per_page = (sim.cfg.page_bytes / BYTES_PER_COL).max(1);
        let index_pages = (n_entries.div_ceil(entries_per_page)).max(1) as u64;
        let page = bucket % index_pages;
        let key = page_key(sim, &format!("{table}#index"), page);
        if sim.lru.access(key) {
            sim.stats.rand_hits += 1;
        } else {
            sim.stats.rand_misses += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_charges_are_noops() {
        assert!(!is_enabled());
        charge_seq_scan(1000, 4);
        charge_random_row("t", 4, 17);
        assert_eq!(stats(), IoStats::default());
    }

    #[test]
    fn seq_scan_counts_pages() {
        enable(IoConfig::default());
        charge_seq_scan(1000, 4); // 8192/(4*16)=128 rows/page -> 8 pages
        let s = disable().unwrap();
        assert_eq!(s.seq_pages, 8);
    }

    #[test]
    fn lru_hits_and_misses() {
        enable(IoConfig {
            cache_pages: 2,
            ..IoConfig::default()
        });
        // 128 rows/page at 4 cols: rows 0..127 are page 0.
        charge_random_row("t", 4, 0); // miss
        charge_random_row("t", 4, 5); // hit (same page)
        charge_random_row("t", 4, 300); // miss (page 2)
        charge_random_row("t", 4, 600); // miss (page 4), evicts page 0
        charge_random_row("t", 4, 0); // miss again
        let s = disable().unwrap();
        assert_eq!(s.rand_hits, 1);
        assert_eq!(s.rand_misses, 4);
    }

    #[test]
    fn distinct_tables_do_not_collide() {
        enable(IoConfig::default());
        charge_random_row("a", 4, 0);
        charge_random_row("b", 4, 0);
        let s = disable().unwrap();
        assert_eq!(s.rand_misses, 2, "same page number, different tables");
    }

    #[test]
    fn estimated_secs_weighs_random_heavier() {
        let cfg = IoConfig::default();
        let seq = IoStats {
            seq_pages: 100,
            rand_hits: 0,
            rand_misses: 0,
        };
        let rand = IoStats {
            seq_pages: 0,
            rand_hits: 0,
            rand_misses: 100,
        };
        assert!(rand.estimated_secs(&cfg) > 10.0 * seq.estimated_secs(&cfg));
    }

    #[test]
    fn take_stats_keeps_cache_warm() {
        enable(IoConfig::default());
        charge_random_row("t", 4, 0);
        let first = take_stats();
        assert_eq!(first.rand_misses, 1);
        charge_random_row("t", 4, 0); // still cached
        let second = disable().unwrap();
        assert_eq!(second.rand_hits, 1);
        assert_eq!(second.rand_misses, 0);
    }

    #[test]
    fn table_pages_rounds_up() {
        let cfg = IoConfig::default();
        assert_eq!(table_pages(1, 4, &cfg), 1);
        assert_eq!(table_pages(129, 4, &cfg), 2);
        assert_eq!(rows_per_page(4, &cfg), 128);
    }
}
