//! Property tests for the storage substrate: 3VL algebra laws, relation
//! invariants, and the I/O simulator's LRU against a naive reference
//! model.

use proptest::prelude::*;

use nra_storage::iosim::{self, IoConfig};
use nra_storage::{Column, ColumnType, Relation, Schema, Truth, Value};

fn truth() -> impl proptest::strategy::Strategy<Value = Truth> {
    proptest::sample::select(vec![Truth::True, Truth::False, Truth::Unknown])
}

fn cell() -> impl proptest::strategy::Strategy<Value = Value> {
    prop_oneof![
        5 => (0i64..6).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn relation() -> impl proptest::strategy::Strategy<Value = Relation> {
    proptest::collection::vec((cell(), cell()), 0..16).prop_map(|rows| {
        Relation::with_rows(
            Schema::new(vec![
                Column::new("t.a", ColumnType::Int),
                Column::new("t.b", ColumnType::Int),
            ]),
            rows.into_iter().map(|(a, b)| vec![a, b]).collect(),
        )
    })
}

proptest! {
    /// Kleene 3VL: De Morgan duality and involution.
    #[test]
    fn three_valued_de_morgan(a in truth(), b in truth()) {
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
        prop_assert_eq!(a.not().not(), a);
    }

    /// 3VL conjunction/disjunction: commutative, associative, monotone
    /// identities.
    #[test]
    fn three_valued_lattice(a in truth(), b in truth(), c in truth()) {
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        prop_assert_eq!(a.and(b).and(c), a.and(b.and(c)));
        prop_assert_eq!(a.or(b).or(c), a.or(b.or(c)));
        prop_assert_eq!(a.and(Truth::True), a);
        prop_assert_eq!(a.or(Truth::False), a);
    }

    /// multiset_eq is reflexive, symmetric, and order-insensitive.
    #[test]
    fn multiset_eq_properties(rel in relation(), seed in 0u64..1000) {
        prop_assert!(rel.multiset_eq(&rel));
        // Shuffle deterministically by sorting on a "random" key.
        let mut rows = rel.rows().to_vec();
        rows.sort_by_key(|r| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            seed.hash(&mut h);
            format!("{r:?}").hash(&mut h);
            h.finish()
        });
        let shuffled = Relation::with_rows(rel.schema().clone(), rows);
        prop_assert!(rel.multiset_eq(&shuffled));
        prop_assert!(shuffled.multiset_eq(&rel));
    }

    /// distinct is idempotent and never grows.
    #[test]
    fn distinct_idempotent(rel in relation()) {
        let d = rel.distinct();
        prop_assert!(d.len() <= rel.len());
        prop_assert!(d.distinct().multiset_eq(&d));
    }

    /// Sorting preserves the multiset and orders NULLs first.
    #[test]
    fn sort_preserves_rows(rel in relation()) {
        let mut sorted = rel.clone();
        sorted.sort_by_columns(&[0, 1]);
        prop_assert!(sorted.multiset_eq(&rel));
        let first_non_null = sorted.rows().iter().position(|r| !r[0].is_null());
        if let Some(p) = first_non_null {
            prop_assert!(sorted.rows()[..p].iter().all(|r| r[0].is_null()));
        }
    }

    /// The iosim LRU agrees with a naive reference model (Vec ordered by
    /// recency) on hit/miss decisions.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..6,
        accesses in proptest::collection::vec((0u8..2, 0usize..2000), 1..80),
    ) {
        iosim::enable(IoConfig { cache_pages: capacity, ..IoConfig::default() });
        // Reference: most-recent at the front. Keys mirror the simulator's
        // (table, page) pairs; rows_per_page at 4 columns is 128.
        let mut model: Vec<(u8, usize)> = Vec::new();
        let mut expect_hits = 0u64;
        let mut expect_misses = 0u64;
        for &(t, row) in &accesses {
            let table = if t == 0 { "a" } else { "b" };
            nra_storage::iosim::charge_random_row(table, 4, row);
            let page = row / 128;
            match model.iter().position(|&e| e == (t, page)) {
                Some(i) => {
                    expect_hits += 1;
                    let e = model.remove(i);
                    model.insert(0, e);
                }
                None => {
                    expect_misses += 1;
                    model.insert(0, (t, page));
                    model.truncate(capacity);
                }
            }
        }
        let stats = iosim::disable().unwrap();
        prop_assert_eq!(stats.rand_hits, expect_hits);
        prop_assert_eq!(stats.rand_misses, expect_misses);
    }
}
