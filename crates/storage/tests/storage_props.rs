//! Property tests for the storage substrate: 3VL algebra laws, relation
//! invariants, and the I/O simulator's LRU against a naive reference
//! model. Formerly proptest; now exhaustive where the domain is small
//! (3VL) and seeded-deterministic elsewhere so the suite runs with no
//! external crates.

use nra_storage::iosim::{self, IoConfig};
use nra_storage::rng::Pcg32;
use nra_storage::{Column, ColumnType, Relation, Schema, Truth, Value};

const TRUTHS: [Truth; 3] = [Truth::True, Truth::False, Truth::Unknown];

fn cell(rng: &mut Pcg32) -> Value {
    if rng.bool(1.0 / 6.0) {
        Value::Null
    } else {
        Value::Int(rng.range_i64(0, 6))
    }
}

fn relation(rng: &mut Pcg32) -> Relation {
    let n = rng.index(16);
    Relation::with_rows(
        Schema::new(vec![
            Column::new("t.a", ColumnType::Int),
            Column::new("t.b", ColumnType::Int),
        ]),
        (0..n).map(|_| vec![cell(rng), cell(rng)]).collect(),
    )
}

/// Kleene 3VL: De Morgan duality and involution — exhaustive.
#[test]
fn three_valued_de_morgan() {
    for a in TRUTHS {
        for b in TRUTHS {
            assert_eq!(a.and(b).not(), a.not().or(b.not()));
            assert_eq!(a.or(b).not(), a.not().and(b.not()));
        }
        assert_eq!(a.not().not(), a);
    }
}

/// 3VL conjunction/disjunction: commutative, associative, monotone
/// identities — exhaustive.
#[test]
fn three_valued_lattice() {
    for a in TRUTHS {
        for b in TRUTHS {
            assert_eq!(a.and(b), b.and(a));
            assert_eq!(a.or(b), b.or(a));
            for c in TRUTHS {
                assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                assert_eq!(a.or(b).or(c), a.or(b.or(c)));
            }
        }
        assert_eq!(a.and(Truth::True), a);
        assert_eq!(a.or(Truth::False), a);
    }
}

/// multiset_eq is reflexive, symmetric, and order-insensitive.
#[test]
fn multiset_eq_properties() {
    let mut rng = Pcg32::new(0x5eed_0001);
    for case in 0..256 {
        let rel = relation(&mut rng);
        assert!(rel.multiset_eq(&rel), "case {case}");
        // Shuffle deterministically by sorting on a hashed key.
        let seed = rng.next_u64();
        let mut rows = rel.rows().to_vec();
        rows.sort_by_key(|r| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            seed.hash(&mut h);
            format!("{r:?}").hash(&mut h);
            h.finish()
        });
        let shuffled = Relation::with_rows(rel.schema().clone(), rows);
        assert!(rel.multiset_eq(&shuffled), "case {case}");
        assert!(shuffled.multiset_eq(&rel), "case {case}");
    }
}

/// distinct is idempotent and never grows.
#[test]
fn distinct_idempotent() {
    let mut rng = Pcg32::new(0x5eed_0002);
    for case in 0..256 {
        let rel = relation(&mut rng);
        let d = rel.distinct();
        assert!(d.len() <= rel.len(), "case {case}");
        assert!(d.distinct().multiset_eq(&d), "case {case}");
    }
}

/// Sorting preserves the multiset and orders NULLs first.
#[test]
fn sort_preserves_rows() {
    let mut rng = Pcg32::new(0x5eed_0003);
    for case in 0..256 {
        let rel = relation(&mut rng);
        let mut sorted = rel.clone();
        sorted.sort_by_columns(&[0, 1]);
        assert!(sorted.multiset_eq(&rel), "case {case}");
        let first_non_null = sorted.rows().iter().position(|r| !r[0].is_null());
        if let Some(p) = first_non_null {
            assert!(
                sorted.rows()[..p].iter().all(|r| r[0].is_null()),
                "case {case}"
            );
        }
    }
}

/// The iosim LRU agrees with a naive reference model (Vec ordered by
/// recency) on hit/miss decisions.
#[test]
fn lru_matches_reference_model() {
    let mut rng = Pcg32::new(0x5eed_0004);
    for case in 0..128 {
        let capacity = 1 + rng.index(5);
        let n_accesses = 1 + rng.index(79);
        let accesses: Vec<(u8, usize)> = (0..n_accesses)
            .map(|_| (rng.index(2) as u8, rng.index(2000)))
            .collect();

        iosim::enable(IoConfig {
            cache_pages: capacity,
            ..IoConfig::default()
        });
        // Reference: most-recent at the front. Keys mirror the simulator's
        // (table, page) pairs; rows_per_page at 4 columns is 128.
        let mut model: Vec<(u8, usize)> = Vec::new();
        let mut expect_hits = 0u64;
        let mut expect_misses = 0u64;
        for &(t, row) in &accesses {
            let table = if t == 0 { "a" } else { "b" };
            iosim::charge_random_row(table, 4, row);
            let page = row / 128;
            match model.iter().position(|&e| e == (t, page)) {
                Some(i) => {
                    expect_hits += 1;
                    let e = model.remove(i);
                    model.insert(0, e);
                }
                None => {
                    expect_misses += 1;
                    model.insert(0, (t, page));
                    model.truncate(capacity);
                }
            }
        }
        let stats = iosim::disable().unwrap();
        assert_eq!(stats.rand_hits, expect_hits, "case {case}");
        assert_eq!(stats.rand_misses, expect_misses, "case {case}");
    }
}
