//! Slow-query log: schema-validated JSONL records for queries whose wall
//! time crossed a threshold.
//!
//! The query entry point builds a [`SlowRecord`] when a query's wall
//! time reaches `QueryOptions::slow_ms` (or the `NRA_SLOW_MS`
//! environment variable; `0` logs every query) and appends its
//! [`SlowRecord::to_jsonl`] line to the `NRA_SLOW_LOG` path — the same
//! append-JSONL idiom the `NRA_METRICS` sink uses. Every string goes
//! through [`crate::json`]'s single escaping routine, and [`validate`] /
//! [`validate_lines`] re-parse emitted records against the schema, so CI
//! can gate on the log staying machine-readable.
//!
//! Record schema (one JSON object per line):
//!
//! ```json
//! {"statement": "select ...", "outcome": "ok", "wall_ms": 12,
//!  "threads": 4, "rows": 100, "strategy": "original",
//!  "mem_bytes": 0, "plan": "..." | null,
//!  "profile": {"ops": [...], ...} | null,
//!  "progress": {"phase": "...", "percent": 100, "rows_processed": 0,
//!               "rows_estimated": 0, "elapsed_ms": 0, "mem_bytes": 0,
//!               "done": true}}
//! ```

use crate::json::{self, Json};
use crate::progress::ProgressSnapshot;
use crate::Profile;

/// Everything one slow-query record carries.
pub struct SlowRecord<'a> {
    pub statement: &'a str,
    pub outcome: &'a str,
    pub wall_ms: u64,
    pub threads: u64,
    pub rows: u64,
    pub strategy: &'a str,
    pub mem_bytes: u64,
    /// Rendered plan text, when one was produced for this query.
    pub plan: Option<&'a str>,
    /// The merged per-operator profile, when one was collected.
    pub profile: Option<&'a Profile>,
    /// The final progress snapshot.
    pub progress: &'a ProgressSnapshot,
}

impl SlowRecord<'_> {
    /// One newline-terminated JSONL line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::from("{\"statement\": ");
        json::write_string(&mut out, self.statement);
        out.push_str(", \"outcome\": ");
        json::write_string(&mut out, self.outcome);
        out.push_str(&format!(
            ", \"wall_ms\": {}, \"threads\": {}, \"rows\": {}, \"strategy\": ",
            self.wall_ms, self.threads, self.rows
        ));
        json::write_string(&mut out, self.strategy);
        out.push_str(&format!(", \"mem_bytes\": {}", self.mem_bytes));
        out.push_str(", \"plan\": ");
        match self.plan {
            Some(p) => json::write_string(&mut out, p),
            None => out.push_str("null"),
        }
        out.push_str(", \"profile\": ");
        match self.profile {
            Some(p) => out.push_str(&p.to_json()),
            None => out.push_str("null"),
        }
        out.push_str(", \"progress\": ");
        out.push_str(&self.progress.to_json());
        out.push_str("}\n");
        out
    }
}

/// The effective slow-query threshold from the environment, in
/// milliseconds (`NRA_SLOW_MS`; `None` when unset or unparsable).
pub fn env_threshold_ms() -> Option<u64> {
    std::env::var("NRA_SLOW_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
}

/// The slow-query log path from the environment (`NRA_SLOW_LOG`).
pub fn env_log_path() -> Option<String> {
    std::env::var("NRA_SLOW_LOG").ok().filter(|p| !p.is_empty())
}

fn require_u64(v: &Json, key: &str) -> Result<(), String> {
    v.get(key)
        .and_then(Json::as_u64)
        .map(|_| ())
        .ok_or_else(|| format!("missing or non-numeric `{key}`"))
}

fn require_str(v: &Json, key: &str) -> Result<(), String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(|_| ())
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

/// Validate one slow-log line against the record schema.
pub fn validate(line: &str) -> Result<(), String> {
    let v = Json::parse(line.trim()).map_err(|e| e.to_string())?;
    for key in ["statement", "outcome", "strategy"] {
        require_str(&v, key)?;
    }
    for key in ["wall_ms", "threads", "rows", "mem_bytes"] {
        require_u64(&v, key)?;
    }
    match v.get("plan") {
        Some(Json::Str(_)) | Some(Json::Null) => {}
        _ => return Err("missing or non-string/null `plan`".to_string()),
    }
    match v.get("profile") {
        Some(p @ Json::Obj(_)) => {
            p.get("ops")
                .and_then(Json::as_arr)
                .ok_or("`profile` lacks an `ops` array")?;
        }
        Some(Json::Null) => {}
        _ => return Err("missing or non-object/null `profile`".to_string()),
    }
    let progress = v
        .get("progress")
        .filter(|p| matches!(p, Json::Obj(_)))
        .ok_or("missing or non-object `progress`")?;
    require_str(progress, "phase")?;
    for key in [
        "percent",
        "rows_processed",
        "rows_estimated",
        "elapsed_ms",
        "mem_bytes",
    ] {
        require_u64(progress, key)?;
    }
    match progress.get("done") {
        Some(Json::Bool(_)) => Ok(()),
        _ => Err("missing or non-boolean `progress.done`".to_string()),
    }
}

/// Validate a whole log (one record per non-empty line), returning the
/// record count or the first failure with its line number.
pub fn validate_lines(contents: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressState;

    fn snapshot() -> ProgressSnapshot {
        let p = ProgressState::new();
        p.set_estimated(10);
        p.finish(12, "done");
        p.snapshot()
    }

    fn record<'a>(progress: &'a ProgressSnapshot, profile: Option<&'a Profile>) -> SlowRecord<'a> {
        SlowRecord {
            statement: "select \"weird\" from t",
            outcome: "ok",
            wall_ms: 7,
            threads: 2,
            rows: 12,
            strategy: "original",
            mem_bytes: 0,
            plan: None,
            profile,
            progress,
        }
    }

    #[test]
    fn records_validate_and_roundtrip() {
        let snap = snapshot();
        let line = record(&snap, None).to_jsonl();
        assert!(line.ends_with('\n'));
        validate(&line).unwrap();
        let v = Json::parse(line.trim()).unwrap();
        assert_eq!(
            v.get("statement").unwrap().as_str(),
            Some("select \"weird\" from t")
        );
        assert_eq!(v.get("profile"), Some(&Json::Null));
        assert_eq!(
            v.get("progress").unwrap().get("percent").unwrap().as_u64(),
            Some(100)
        );
    }

    #[test]
    fn records_embed_profiles() {
        crate::enable();
        crate::span(|| "join".to_string()).rows_out(3);
        let profile = crate::disable().unwrap();
        let snap = snapshot();
        let line = record(&snap, Some(&profile)).to_jsonl();
        validate(&line).unwrap();
        let v = Json::parse(line.trim()).unwrap();
        let ops = v.get("profile").unwrap().get("ops").unwrap();
        assert_eq!(
            ops.as_arr().unwrap()[0].get("name").unwrap().as_str(),
            Some("join")
        );
    }

    #[test]
    fn validation_rejects_malformed_records() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        let snap = snapshot();
        let good = record(&snap, None).to_jsonl();
        let bad = good.replace("\"wall_ms\": 7", "\"wall_ms\": \"7\"");
        assert!(validate(&bad).is_err());
        let bad = good.replace("\"progress\"", "\"progresz\"");
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn multi_line_logs_validate_with_line_numbers() {
        let snap = snapshot();
        let line = record(&snap, None).to_jsonl();
        let contents = format!("{line}\n{line}");
        assert_eq!(validate_lines(&contents), Ok(2));
        let broken = format!("{line}{{\"nope\": 1}}\n");
        let err = validate_lines(&broken).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
