//! Query-lifecycle tracing: hierarchical spans with typed, structured
//! events, emitted through pluggable [`TraceSink`]s.
//!
//! Where the sibling profile collector ([`crate::Profile`]) answers *how
//! much* each operator did, tracing answers *what happened and why* across
//! the whole front-to-back pipeline: lex → parse → bind → block analysis →
//! strategy selection → rewrite → execute. The instrumented layers emit
//! [`TraceEvent`]s — `QueryStart`, `Parsed`, `Bound`, `StrategyChosen`
//! (with the planner's reason and the rejected alternatives),
//! `RewriteStep`, per-phase `PhaseStart`/`PhaseDone`, per-operator `Op`
//! (sharing the profile's qualified names, so traces and profiles
//! correlate), and `QueryEnd` — at a nesting depth maintained by the
//! thread-local tracer.
//!
//! Three sinks ship with the crate:
//!
//! * [`RingSink`] — an in-memory ring buffer, read back as a [`Trace`]
//!   (used by `Database::trace_query` and tests);
//! * [`StderrSink`] — a pretty indented tree on stderr (`NRA_TRACE=1`);
//! * [`JsonlSink`] — one JSON object per event appended to a file
//!   (`NRA_TRACE_FILE=path`).
//!
//! Like the profile collector, tracing is disabled by default and costs a
//! single thread-local check per potential event when off — event
//! construction is behind closures that never run while disabled.
//!
//! ```
//! use nra_obs::trace::{self, RingSink, TraceEvent};
//!
//! let (sink, handle) = RingSink::with_capacity(64);
//! trace::start(vec![Box::new(sink)]);
//! trace::emit(|| TraceEvent::QueryStart { sql: "select 1".into() });
//! {
//!     let mut ph = trace::phase(|| "parse".to_string());
//!     ph.set_rows(1);
//! }
//! trace::stop();
//! let t = handle.take();
//! assert_eq!(t.entries.len(), 3); // QueryStart, PhaseStart, PhaseDone
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::rc::Rc;
use std::time::Instant;

use crate::json;

/// A typed event in the life of one query.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The query text enters the pipeline.
    QueryStart { sql: String },
    /// Lexing + parsing succeeded; `tokens` is the lexer's token count.
    Parsed { tokens: usize },
    /// Binding succeeded: block count and the linking operators in
    /// depth-first order (`LinkOp::describe` strings).
    Bound {
        blocks: usize,
        linking_ops: Vec<String>,
    },
    /// The planner picked a strategy for one query block, with the reason
    /// and every rejected alternative `(name, why it was rejected)`.
    StrategyChosen {
        block: usize,
        name: String,
        reason: String,
        alternatives: Vec<(String, String)>,
    },
    /// An algebraic rewrite was applied, shrinking (or reshaping) the
    /// operator tree from `nodes_before` to `nodes_after` nodes.
    RewriteStep {
        rule: String,
        nodes_before: usize,
        nodes_after: usize,
    },
    /// A pipeline phase (or execution scope, e.g. a query block `b2`)
    /// opened; subsequent events nest one level deeper until its
    /// `PhaseDone`.
    PhaseStart { phase: String },
    /// The matching phase closed, with its wall time and (when known) the
    /// rows it produced.
    PhaseDone {
        phase: String,
        wall_ns: u64,
        rows: Option<u64>,
    },
    /// The planner granted the executor a data-parallelism budget:
    /// `threads` workers over at most `partitions` hash/morsel partitions,
    /// with the reason for the choice (or for staying sequential).
    Parallelism {
        threads: usize,
        partitions: usize,
        reason: String,
    },
    /// One operator span finished (same qualified names as
    /// [`crate::Profile`], so traces and profiles correlate by name).
    Op {
        name: String,
        wall_ns: u64,
        rows_in: u64,
        rows_out: u64,
    },
    /// The resource governor intervened or reported: `action` is one of
    /// `cancelled`, `resource-exhausted`, `fault-injected`, or
    /// `mem-high-water` (the per-query memory high-water mark, emitted
    /// once at query end for every governed query); `detail` names the
    /// phase or fault site where it happened, or carries the byte count.
    Governor { action: String, detail: String },
    /// Per-query cardinality-feedback summary: over the `nodes` plan
    /// nodes with both an estimate and a measured actual, the maximum and
    /// mean Q-error (`max(est/act, act/est)`, scaled by 100 — a perfect
    /// plan scores 100/100).
    QErrorSummary {
        nodes: usize,
        max_x100: u64,
        mean_x100: u64,
    },
    /// The query finished with `rows` result tuples.
    QueryEnd { rows: u64, wall_ns: u64 },
}

impl TraceEvent {
    /// Snake-case discriminator used as the JSONL `event` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::QueryStart { .. } => "query_start",
            TraceEvent::Parsed { .. } => "parsed",
            TraceEvent::Bound { .. } => "bound",
            TraceEvent::StrategyChosen { .. } => "strategy_chosen",
            TraceEvent::RewriteStep { .. } => "rewrite_step",
            TraceEvent::PhaseStart { .. } => "phase_start",
            TraceEvent::PhaseDone { .. } => "phase_done",
            TraceEvent::Parallelism { .. } => "parallelism",
            TraceEvent::Op { .. } => "op",
            TraceEvent::Governor { .. } => "governor",
            TraceEvent::QErrorSummary { .. } => "qerror_summary",
            TraceEvent::QueryEnd { .. } => "query_end",
        }
    }

    /// One JSON object (no trailing newline) carrying the depth and every
    /// event field.
    pub fn to_json(&self, depth: usize) -> String {
        let mut out = format!("{{\"depth\": {depth}, \"event\": \"{}\"", self.kind());
        match self {
            TraceEvent::QueryStart { sql } => {
                out.push_str(", \"sql\": ");
                json::write_string(&mut out, sql);
            }
            TraceEvent::Parsed { tokens } => out.push_str(&format!(", \"tokens\": {tokens}")),
            TraceEvent::Bound {
                blocks,
                linking_ops,
            } => {
                out.push_str(&format!(", \"blocks\": {blocks}, \"linking_ops\": ["));
                for (i, op) in linking_ops.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    json::write_string(&mut out, op);
                }
                out.push(']');
            }
            TraceEvent::StrategyChosen {
                block,
                name,
                reason,
                alternatives,
            } => {
                out.push_str(&format!(", \"block\": {block}, \"name\": "));
                json::write_string(&mut out, name);
                out.push_str(", \"reason\": ");
                json::write_string(&mut out, reason);
                out.push_str(", \"alternatives\": [");
                for (i, (alt, why)) in alternatives.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str("{\"name\": ");
                    json::write_string(&mut out, alt);
                    out.push_str(", \"reason\": ");
                    json::write_string(&mut out, why);
                    out.push('}');
                }
                out.push(']');
            }
            TraceEvent::RewriteStep {
                rule,
                nodes_before,
                nodes_after,
            } => {
                out.push_str(", \"rule\": ");
                json::write_string(&mut out, rule);
                out.push_str(&format!(
                    ", \"nodes_before\": {nodes_before}, \"nodes_after\": {nodes_after}"
                ));
            }
            TraceEvent::PhaseStart { phase } => {
                out.push_str(", \"phase\": ");
                json::write_string(&mut out, phase);
            }
            TraceEvent::PhaseDone {
                phase,
                wall_ns,
                rows,
            } => {
                out.push_str(", \"phase\": ");
                json::write_string(&mut out, phase);
                out.push_str(&format!(", \"wall_ns\": {wall_ns}, \"rows\": "));
                match rows {
                    Some(n) => out.push_str(&n.to_string()),
                    None => out.push_str("null"),
                }
            }
            TraceEvent::Parallelism {
                threads,
                partitions,
                reason,
            } => {
                out.push_str(&format!(
                    ", \"threads\": {threads}, \"partitions\": {partitions}, \"reason\": "
                ));
                json::write_string(&mut out, reason);
            }
            TraceEvent::Op {
                name,
                wall_ns,
                rows_in,
                rows_out,
            } => {
                out.push_str(", \"name\": ");
                json::write_string(&mut out, name);
                out.push_str(&format!(
                    ", \"wall_ns\": {wall_ns}, \"rows_in\": {rows_in}, \"rows_out\": {rows_out}"
                ));
            }
            TraceEvent::Governor { action, detail } => {
                out.push_str(", \"action\": ");
                json::write_string(&mut out, action);
                out.push_str(", \"detail\": ");
                json::write_string(&mut out, detail);
            }
            TraceEvent::QErrorSummary {
                nodes,
                max_x100,
                mean_x100,
            } => {
                out.push_str(&format!(
                    ", \"nodes\": {nodes}, \"max_x100\": {max_x100}, \"mean_x100\": {mean_x100}"
                ));
            }
            TraceEvent::QueryEnd { rows, wall_ns } => {
                out.push_str(&format!(", \"rows\": {rows}, \"wall_ns\": {wall_ns}"));
            }
        }
        out.push('}');
        out
    }
}

/// Render nanoseconds human-readably (`421ns`, `3.1µs`, `12.4ms`, `1.73s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::QueryStart { sql } => write!(f, "● query: {sql}"),
            TraceEvent::Parsed { tokens } => write!(f, "· parsed: {tokens} token(s)"),
            TraceEvent::Bound {
                blocks,
                linking_ops,
            } => {
                write!(f, "· bound: {blocks} block(s)")?;
                if !linking_ops.is_empty() {
                    write!(f, "; links: {}", linking_ops.join(", "))?;
                }
                Ok(())
            }
            TraceEvent::StrategyChosen {
                block,
                name,
                reason,
                alternatives,
            } => {
                write!(f, "· strategy[b{block}]: {name} — {reason}")?;
                for (alt, why) in alternatives {
                    write!(f, "; rejected {alt}: {why}")?;
                }
                Ok(())
            }
            TraceEvent::RewriteStep {
                rule,
                nodes_before,
                nodes_after,
            } => write!(
                f,
                "· rewrite {rule}: {nodes_before} → {nodes_after} node(s)"
            ),
            TraceEvent::PhaseStart { phase } => write!(f, "▶ {phase}"),
            TraceEvent::PhaseDone {
                phase,
                wall_ns,
                rows,
            } => {
                write!(f, "◀ {phase} done in {}", fmt_ns(*wall_ns))?;
                if let Some(n) = rows {
                    write!(f, ", rows={n}")?;
                }
                Ok(())
            }
            TraceEvent::Parallelism {
                threads,
                partitions,
                reason,
            } => write!(
                f,
                "· parallel: {threads} thread(s) × {partitions} partition(s) — {reason}"
            ),
            TraceEvent::Op {
                name,
                wall_ns,
                rows_in,
                rows_out,
            } => write!(
                f,
                "• op {name}: rows {rows_in}→{rows_out} in {}",
                fmt_ns(*wall_ns)
            ),
            TraceEvent::Governor { action, detail } => {
                write!(f, "⚠ governor: {action} at `{detail}`")
            }
            TraceEvent::QErrorSummary {
                nodes,
                max_x100,
                mean_x100,
            } => write!(
                f,
                "· q-error: {nodes} node(s), max ×{:.1}, mean ×{:.1}",
                *max_x100 as f64 / 100.0,
                *mean_x100 as f64 / 100.0
            ),
            TraceEvent::QueryEnd { rows, wall_ns } => {
                write!(f, "● done: {rows} row(s) in {}", fmt_ns(*wall_ns))
            }
        }
    }
}

/// Where trace events go. `depth` is the nesting level of the event in the
/// span tree (0 = top level).
pub trait TraceSink {
    fn emit(&mut self, depth: usize, event: &TraceEvent);
    /// Called when the tracer is stopped (flush buffered output).
    fn finish(&mut self) {}
}

/// One recorded event with its tree depth.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    pub depth: usize,
    pub event: TraceEvent,
}

/// A finished trace: the recorded entries in emission order (plus how many
/// were dropped if the ring overflowed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub entries: Vec<TraceEntry>,
    pub dropped: u64,
}

impl Trace {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The events in order, without depths.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.entries.iter().map(|e| &e.event)
    }

    /// Wall time of the first completed phase with this name.
    pub fn phase_wall_ns(&self, name: &str) -> Option<u64> {
        self.events().find_map(|e| match e {
            TraceEvent::PhaseDone { phase, wall_ns, .. } if phase == name => Some(*wall_ns),
            _ => None,
        })
    }

    /// Every `StrategyChosen` event, in order.
    pub fn strategy_events(&self) -> Vec<&TraceEvent> {
        self.events()
            .filter(|e| matches!(e, TraceEvent::StrategyChosen { .. }))
            .collect()
    }

    /// Pretty indented tree (same layout as [`StderrSink`] prints live).
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            for _ in 0..entry.depth {
                out.push_str("  ");
            }
            out.push_str(&entry.event.to_string());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("({} earlier event(s) dropped)\n", self.dropped));
        }
        out
    }

    /// JSONL: one event object per line, in order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&entry.event.to_json(entry.depth));
            out.push('\n');
        }
        out
    }
}

struct RingBuf {
    cap: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

/// In-memory ring-buffer sink. Create with [`RingSink::with_capacity`],
/// install the sink, and read the recorded [`Trace`] back through the
/// returned [`RingHandle`] after stopping the tracer.
pub struct RingSink {
    buf: Rc<RefCell<RingBuf>>,
}

/// Reader side of a [`RingSink`].
pub struct RingHandle {
    buf: Rc<RefCell<RingBuf>>,
}

impl RingSink {
    /// A ring of at most `cap` events (oldest dropped first).
    pub fn with_capacity(cap: usize) -> (RingSink, RingHandle) {
        let buf = Rc::new(RefCell::new(RingBuf {
            cap: cap.max(1),
            entries: VecDeque::new(),
            dropped: 0,
        }));
        (
            RingSink {
                buf: Rc::clone(&buf),
            },
            RingHandle { buf },
        )
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, depth: usize, event: &TraceEvent) {
        let mut buf = self.buf.borrow_mut();
        if buf.entries.len() == buf.cap {
            buf.entries.pop_front();
            buf.dropped += 1;
        }
        buf.entries.push_back(TraceEntry {
            depth,
            event: event.clone(),
        });
    }
}

impl RingHandle {
    /// Drain the recorded events into a [`Trace`].
    pub fn take(&self) -> Trace {
        let mut buf = self.buf.borrow_mut();
        let dropped = buf.dropped;
        buf.dropped = 0;
        Trace {
            entries: buf.entries.drain(..).collect(),
            dropped,
        }
    }

    /// Events currently buffered (without draining).
    pub fn len(&self) -> usize {
        self.buf.borrow().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Pretty indented tree on stderr, printed live as events arrive.
#[derive(Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn emit(&mut self, depth: usize, event: &TraceEvent) {
        eprintln!("{:indent$}{event}", "", indent = depth * 2);
    }
}

/// JSON-lines file sink: one event object per line.
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Create (truncate) `path` for writing.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl TraceSink for JsonlSink {
    fn emit(&mut self, depth: usize, event: &TraceEvent) {
        let _ = writeln!(self.out, "{}", event.to_json(depth));
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

struct Tracer {
    depth: usize,
    sinks: Vec<Box<dyn TraceSink>>,
}

thread_local! {
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Install sinks and start tracing on this thread (replacing any active
/// tracer; its sinks are finished first).
pub fn start(sinks: Vec<Box<dyn TraceSink>>) {
    stop();
    TRACER.with(|t| {
        *t.borrow_mut() = Some(Tracer { depth: 0, sinks });
    });
}

/// Stop tracing: finish (flush) and drop every installed sink.
pub fn stop() {
    let tracer = TRACER.with(|t| t.borrow_mut().take());
    if let Some(mut tracer) = tracer {
        for sink in &mut tracer.sinks {
            sink.finish();
        }
    }
}

/// Whether a tracer is installed on this thread.
pub fn enabled() -> bool {
    TRACER.with(|t| t.borrow().is_some())
}

/// Emit one event at the current depth. The closure only runs when
/// tracing is enabled, so disabled call sites pay a single thread-local
/// check and no event construction.
pub fn emit<F: FnOnce() -> TraceEvent>(f: F) {
    if !enabled() {
        return;
    }
    let event = f();
    TRACER.with(|t| {
        if let Some(tracer) = &mut *t.borrow_mut() {
            let depth = tracer.depth;
            for sink in &mut tracer.sinks {
                sink.emit(depth, &event);
            }
        }
    });
}

/// The sinks requested by the environment: [`StderrSink`] when
/// `NRA_TRACE=1`, plus a [`JsonlSink`] when `NRA_TRACE_FILE=<path>` is set
/// (unwritable paths are reported on stderr and skipped). Empty when
/// neither variable is set.
pub fn env_sinks() -> Vec<Box<dyn TraceSink>> {
    let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
    if std::env::var("NRA_TRACE").is_ok_and(|v| v == "1") {
        sinks.push(Box::new(StderrSink));
    }
    if let Ok(path) = std::env::var("NRA_TRACE_FILE") {
        match JsonlSink::create(std::path::Path::new(&path)) {
            Ok(sink) => sinks.push(Box::new(sink)),
            Err(e) => eprintln!("NRA_TRACE_FILE: cannot open {path}: {e}"),
        }
    }
    sinks
}

/// An open phase: emitted `PhaseStart` and deepened the tree on creation;
/// emits `PhaseDone` with the measured wall time (and optional row count)
/// on drop. Inert when tracing is disabled at creation.
pub struct PhaseGuard {
    inner: Option<(String, Instant)>,
    rows: Option<u64>,
}

/// Open a phase. The name closure only runs when tracing is enabled.
pub fn phase<F: FnOnce() -> String>(name: F) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard {
            inner: None,
            rows: None,
        };
    }
    phase_str(name())
}

/// Open a phase with an already-built name.
pub fn phase_str(name: String) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard {
            inner: None,
            rows: None,
        };
    }
    emit(|| TraceEvent::PhaseStart {
        phase: name.clone(),
    });
    TRACER.with(|t| {
        if let Some(tracer) = &mut *t.borrow_mut() {
            tracer.depth += 1;
        }
    });
    PhaseGuard {
        inner: Some((name, Instant::now())),
        rows: None,
    }
}

impl PhaseGuard {
    /// Whether this phase is live (tracing was enabled at creation).
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a produced-row count to the closing `PhaseDone`.
    pub fn set_rows(&mut self, rows: u64) {
        if self.inner.is_some() {
            self.rows = Some(rows);
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.inner.take() {
            let wall_ns = start.elapsed().as_nanos() as u64;
            TRACER.with(|t| {
                if let Some(tracer) = &mut *t.borrow_mut() {
                    tracer.depth = tracer.depth.saturating_sub(1);
                }
            });
            let rows = self.rows;
            emit(|| TraceEvent::PhaseDone {
                phase: name,
                wall_ns,
                rows,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_is_inert() {
        assert!(!enabled());
        emit(|| unreachable!("event closure must not run when disabled"));
        let ph = phase(|| unreachable!("phase name must not run when disabled"));
        assert!(!ph.active());
        drop(ph);
        assert!(!enabled());
    }

    #[test]
    fn ring_records_nested_phases() {
        let (sink, handle) = RingSink::with_capacity(128);
        start(vec![Box::new(sink)]);
        emit(|| TraceEvent::QueryStart {
            sql: "select 1".into(),
        });
        {
            let mut outer = phase(|| "execute".to_string());
            outer.set_rows(7);
            let _inner = phase(|| "b2".to_string());
            emit(|| TraceEvent::Op {
                name: "b2/join".into(),
                wall_ns: 10,
                rows_in: 4,
                rows_out: 2,
            });
        }
        stop();
        let trace = handle.take();
        assert_eq!(trace.dropped, 0);
        let depths: Vec<usize> = trace.entries.iter().map(|e| e.depth).collect();
        // QueryStart(0), execute start(0), b2 start(1), op(2),
        // b2 done(1), execute done(0)
        assert_eq!(depths, vec![0, 0, 1, 2, 1, 0]);
        assert_eq!(trace.phase_wall_ns("execute").map(|ns| ns > 0), Some(true));
        match trace.entries.last().map(|e| &e.event) {
            Some(TraceEvent::PhaseDone { phase, rows, .. }) => {
                assert_eq!(phase, "execute");
                assert_eq!(*rows, Some(7));
            }
            other => panic!("unexpected tail event {other:?}"),
        }
        let tree = trace.render_tree();
        assert!(tree.contains("▶ execute"));
        assert!(tree.contains("    • op b2/join"));
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let (sink, handle) = RingSink::with_capacity(2);
        start(vec![Box::new(sink)]);
        for i in 0..5 {
            emit(|| TraceEvent::Parsed { tokens: i });
        }
        stop();
        let trace = handle.take();
        assert_eq!(trace.dropped, 3);
        assert_eq!(
            trace.events().collect::<Vec<_>>(),
            vec![
                &TraceEvent::Parsed { tokens: 3 },
                &TraceEvent::Parsed { tokens: 4 }
            ]
        );
        assert!(trace.render_tree().contains("3 earlier event(s) dropped"));
    }

    #[test]
    fn jsonl_escapes_and_roundtrips() {
        let event = TraceEvent::Op {
            name: "b2/nest[υ \"quoted\\name\"]".into(),
            wall_ns: 5,
            rows_in: 1,
            rows_out: 1,
        };
        let line = event.to_json(3);
        let parsed = crate::json::Json::parse(&line).unwrap();
        assert_eq!(parsed.get("depth").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("event").unwrap().as_str(), Some("op"));
        assert_eq!(
            parsed.get("name").unwrap().as_str(),
            Some("b2/nest[υ \"quoted\\name\"]")
        );
    }

    #[test]
    fn strategy_event_serializes_alternatives() {
        let event = TraceEvent::StrategyChosen {
            block: 2,
            name: "optimized".into(),
            reason: "linear chain".into(),
            alternatives: vec![("positive-rewrite".into(), "negative link `<> all`".into())],
        };
        let parsed = crate::json::Json::parse(&event.to_json(1)).unwrap();
        let alts = parsed.get("alternatives").unwrap().as_arr().unwrap();
        assert_eq!(alts.len(), 1);
        assert_eq!(
            alts[0].get("name").unwrap().as_str(),
            Some("positive-rewrite")
        );
        assert!(event.to_string().contains("rejected positive-rewrite"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(421), "421ns");
        assert_eq!(fmt_ns(3_100), "3.1µs");
        assert_eq!(fmt_ns(12_400_000), "12.4ms");
        assert_eq!(fmt_ns(1_730_000_000), "1.73s");
    }
}
