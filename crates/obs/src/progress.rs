//! Live per-query progress estimation.
//!
//! A [`ProgressState`] is built by the query entry point (`Database::
//! execute`) alongside the governor guard, installed on the coordinating
//! thread via [`install`], and carried to every worker by
//! [`crate::Handoff`] — the same thread-local + guard pattern the
//! per-query metrics registry uses. While the query runs, the engine's
//! governor cadence (`governor::tick`, every 1024 rows) feeds
//! [`on_rows`], and the memory-budget flush path feeds [`on_mem`], so a
//! [`ProgressSnapshot`] — phase, percent complete, rows processed vs.
//! estimated, elapsed wall time, memory high-water — is readable *from
//! any thread* through the shared `Arc` at any point during execution.
//!
//! Determinism contract: progress is an *observer*, never a participant.
//! It touches no operator counter, allocates nothing on the per-row hot
//! path (row updates are batch-amortized at the existing checkpoint
//! cadence, so profile counters stay byte-identical with progress armed
//! or not), and the engine never reads it back.
//!
//! The row counter deliberately undercounts: each scan loop contributes
//! only whole 1024-row steps, and the final partial step lands when the
//! query finishes ([`ProgressState::finish`] raises the counter to the
//! profile's exact row totals). Undercounting keeps mid-query snapshots
//! monotonically non-decreasing — the estimate can only catch *up* to
//! the truth, never overshoot and regress.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json;

/// Shared, thread-safe progress state of one executing query.
#[derive(Debug)]
pub struct ProgressState {
    /// Rows counted by the engine's checkpoint cadence (whole
    /// [`on_rows`] steps only; lags the truth by at most one step per
    /// live scan loop).
    rows_ticked: AtomicU64,
    /// Exact row total supplied by [`ProgressState::finish`] (0 until
    /// the query completes).
    rows_final: AtomicU64,
    /// Planner-estimated total rows the query will process (sum of the
    /// cardinality estimates over every plan node; 0 = no estimate).
    rows_estimated: AtomicU64,
    /// Memory high-water mark in governed bytes (0 when no memory
    /// budget is armed — the governor only totals charges when it must).
    mem_high_water: AtomicU64,
    done: AtomicBool,
    /// The most recent phase label a checkpoint reported.
    phase: Mutex<String>,
    started: Instant,
}

impl Default for ProgressState {
    fn default() -> ProgressState {
        ProgressState::new()
    }
}

impl ProgressState {
    pub fn new() -> ProgressState {
        ProgressState {
            rows_ticked: AtomicU64::new(0),
            rows_final: AtomicU64::new(0),
            rows_estimated: AtomicU64::new(0),
            mem_high_water: AtomicU64::new(0),
            done: AtomicBool::new(false),
            phase: Mutex::new(String::from("start")),
            started: Instant::now(),
        }
    }

    /// Record the planner's estimated total row volume (set once, right
    /// after binding).
    pub fn set_estimated(&self, rows: u64) {
        self.rows_estimated.store(rows, Ordering::Relaxed);
    }

    /// Fold `n` processed rows into the counter and note the phase that
    /// reported them. Called from the engine's checkpoint cadence on
    /// whichever thread is scanning.
    pub fn add_rows(&self, n: u64, phase: &str) {
        self.rows_ticked.fetch_add(n, Ordering::Relaxed);
        let mut cur = self.phase.lock().unwrap_or_else(|e| e.into_inner());
        if *cur != phase {
            phase.clone_into(&mut cur);
        }
    }

    /// Raise the memory high-water mark to `bytes` if it is below it.
    pub fn raise_mem(&self, bytes: u64) {
        self.mem_high_water.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Mark the query finished, raising the row counter to the exact
    /// `rows` total (typically the merged profile's row counters) and
    /// pinning the percentage at 100.
    pub fn finish(&self, rows: u64, phase: &str) {
        let ticked = self.rows_ticked.load(Ordering::Relaxed);
        self.rows_final.store(rows.max(ticked), Ordering::Relaxed);
        {
            let mut cur = self.phase.lock().unwrap_or_else(|e| e.into_inner());
            phase.clone_into(&mut cur);
        }
        self.done.store(true, Ordering::Release);
    }

    /// A point-in-time view, readable from any thread.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let done = self.done.load(Ordering::Acquire);
        let ticked = self.rows_ticked.load(Ordering::Relaxed);
        let rows_processed = if done {
            self.rows_final.load(Ordering::Relaxed).max(ticked)
        } else {
            ticked
        };
        let rows_estimated = self.rows_estimated.load(Ordering::Relaxed);
        let percent = if done {
            100
        } else {
            // Cap at 99 while running: estimates can undershoot, and a
            // live query must never claim completion.
            (rows_processed * 100)
                .checked_div(rows_estimated)
                .map_or(0, |p| p.min(99))
        };
        ProgressSnapshot {
            phase: self.phase.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            percent,
            rows_processed,
            rows_estimated,
            elapsed_ms: self.started.elapsed().as_millis() as u64,
            mem_bytes: self.mem_high_water.load(Ordering::Relaxed),
            done,
        }
    }
}

/// One observation of a query's progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// The phase label of the most recent engine checkpoint
    /// (e.g. `join-scan`, `nest-build`, `linking-scan`).
    pub phase: String,
    /// Estimated percent complete: rows processed over rows estimated,
    /// capped at 99 until the query finishes, exactly 100 once done.
    pub percent: u64,
    pub rows_processed: u64,
    pub rows_estimated: u64,
    pub elapsed_ms: u64,
    /// Governed-allocation high-water mark (0 without a memory budget).
    pub mem_bytes: u64,
    pub done: bool,
}

impl ProgressSnapshot {
    /// JSON object form (embedded in slow-query-log records).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"phase\": ");
        json::write_string(&mut out, &self.phase);
        out.push_str(&format!(
            ", \"percent\": {}, \"rows_processed\": {}, \"rows_estimated\": {}, \
             \"elapsed_ms\": {}, \"mem_bytes\": {}, \"done\": {}}}",
            self.percent,
            self.rows_processed,
            self.rows_estimated,
            self.elapsed_ms,
            self.mem_bytes,
            self.done
        ));
        out
    }
}

thread_local! {
    /// The progress state of the query executing on this thread, if any.
    static PROGRESS: RefCell<Option<Arc<ProgressState>>> = const { RefCell::new(None) };
}

/// Install `state` as this thread's progress sink for the guard's
/// lifetime (replacing and later restoring any previous one). Mirrors
/// [`crate::metrics::install_query`].
pub fn install(state: Option<Arc<ProgressState>>) -> ProgressGuard {
    let prev = PROGRESS.with(|p| std::mem::replace(&mut *p.borrow_mut(), state));
    ProgressGuard { prev }
}

/// Restores the previously installed progress state on drop.
pub struct ProgressGuard {
    prev: Option<Arc<ProgressState>>,
}

impl Drop for ProgressGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        PROGRESS.with(|p| *p.borrow_mut() = prev);
    }
}

/// The progress state installed on this thread, if any (captured by
/// [`crate::Handoff`] to hand to workers).
pub fn current() -> Option<Arc<ProgressState>> {
    PROGRESS.with(|p| p.borrow().clone())
}

/// Engine hook: `n` more rows went through a scan loop in `phase`.
/// No-op when no progress state is installed.
pub fn on_rows(n: u64, phase: &str) {
    PROGRESS.with(|p| {
        if let Some(state) = &*p.borrow() {
            state.add_rows(n, phase);
        }
    });
}

/// Engine hook: governed memory usage reached `total` bytes. No-op when
/// no progress state is installed.
pub fn on_mem(total: u64) {
    PROGRESS.with(|p| {
        if let Some(state) = &*p.borrow() {
            state.raise_mem(total);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_installation() {
        assert!(current().is_none());
        on_rows(1024, "join-scan");
        on_mem(4096);
    }

    #[test]
    fn snapshots_track_rows_phase_and_memory() {
        let p = Arc::new(ProgressState::new());
        p.set_estimated(4096);
        let _g = install(Some(p.clone()));
        on_rows(1024, "join-scan");
        on_mem(500);
        on_rows(1024, "nest-scan");
        on_mem(300); // below high water: ignored
        let s = p.snapshot();
        assert_eq!(s.rows_processed, 2048);
        assert_eq!(s.rows_estimated, 4096);
        assert_eq!(s.percent, 50);
        assert_eq!(s.phase, "nest-scan");
        assert_eq!(s.mem_bytes, 500);
        assert!(!s.done);
    }

    #[test]
    fn percent_caps_at_99_until_done() {
        let p = ProgressState::new();
        p.set_estimated(100);
        p.add_rows(100_000, "scan");
        assert_eq!(p.snapshot().percent, 99);
        p.finish(100_500, "done");
        let s = p.snapshot();
        assert_eq!(s.percent, 100);
        assert_eq!(s.rows_processed, 100_500);
        assert!(s.done);
    }

    #[test]
    fn finish_never_lowers_the_row_counter() {
        let p = ProgressState::new();
        p.add_rows(5000, "scan");
        p.finish(10, "done"); // a stale/partial total cannot regress
        assert_eq!(p.snapshot().rows_processed, 5000);
    }

    #[test]
    fn zero_estimate_reports_zero_percent_while_running() {
        let p = ProgressState::new();
        p.add_rows(1024, "scan");
        assert_eq!(p.snapshot().percent, 0);
        p.finish(1024, "done");
        assert_eq!(p.snapshot().percent, 100);
    }

    #[test]
    fn snapshots_are_monotonic() {
        let p = ProgressState::new();
        p.set_estimated(10_000);
        let mut last = p.snapshot();
        for _ in 0..8 {
            p.add_rows(1024, "scan");
            let s = p.snapshot();
            assert!(s.rows_processed >= last.rows_processed);
            assert!(s.percent >= last.percent);
            last = s;
        }
        p.finish(9000, "done");
        let s = p.snapshot();
        assert!(s.rows_processed >= last.rows_processed);
        assert_eq!(s.percent, 100);
    }

    #[test]
    fn install_guard_restores_previous_state() {
        let outer = Arc::new(ProgressState::new());
        let _og = install(Some(outer.clone()));
        {
            let inner = Arc::new(ProgressState::new());
            let _ig = install(Some(inner.clone()));
            on_rows(1024, "inner");
            assert_eq!(inner.snapshot().rows_processed, 1024);
        }
        on_rows(1024, "outer");
        assert_eq!(outer.snapshot().rows_processed, 1024);
    }

    #[test]
    fn snapshot_json_parses_back() {
        let p = ProgressState::new();
        p.set_estimated(2048);
        p.add_rows(1024, "linking-scan");
        let parsed = json::Json::parse(&p.snapshot().to_json()).unwrap();
        assert_eq!(parsed.get("phase").unwrap().as_str(), Some("linking-scan"));
        assert_eq!(parsed.get("percent").unwrap().as_u64(), Some(50));
        assert_eq!(parsed.get("rows_processed").unwrap().as_u64(), Some(1024));
        assert_eq!(parsed.get("done"), Some(&json::Json::Bool(false)));
    }
}
