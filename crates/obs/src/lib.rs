//! # nra-obs
//!
//! Runtime execution observability for the nested relational subquery
//! processor: a thread-local collector of per-operator [`OpStats`], span
//! timers, and machine-readable [`Profile`]s.
//!
//! The design mirrors `nra_storage::iosim` — collection lives in a
//! thread-local that is `None` unless explicitly enabled, so the
//! instrumented operators pay a single thread-local check (no allocation,
//! no timing syscalls) on the hot path when collection is off:
//!
//! ```
//! nra_obs::enable();
//! {
//!     let _scope = nra_obs::scope(|| "b2".to_string());
//!     let mut span = nra_obs::span(|| "join".to_string());
//!     span.rows_in(100);
//!     span.rows_out(42);
//! } // span drop records wall time under "b2/join"
//! let profile = nra_obs::disable().unwrap();
//! assert_eq!(profile.get("b2/join").unwrap().rows_out, 42);
//! println!("{}", profile.to_json());
//! ```
//!
//! Operators record under a *qualified name* `scope/op` where the scope is
//! pushed by the executor driving them (typically the query-block id,
//! `b{id}`), so one profile distinguishes e.g. the join feeding block 2
//! from the join feeding block 3. A [`Profile`] snapshot also folds in the
//! I/O simulator's page counts ([`nra_storage::iosim::IoStats`]) when the
//! simulator is enabled, so one artifact carries both CPU-side operator
//! stats and the simulated disk story.

pub mod json;
pub mod metrics;
pub mod progress;
pub mod queryreg;
pub mod slowlog;
pub mod trace;

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

use nra_storage::iosim::{self, IoStats};
use nra_storage::Truth;

/// Counters for one (qualified) operator.
///
/// All counters are additive across invocations; which fields an operator
/// touches depends on its kind (joins fill the hash fields, nest fills the
/// group fields, linking selections fill pass/fail/unknown and padded).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Number of span invocations merged into this entry.
    pub invocations: u64,
    /// Input tuples consumed.
    pub rows_in: u64,
    /// Output tuples produced.
    pub rows_out: u64,
    /// Batches / probe calls (operator-specific subdivision of the input).
    pub batches: u64,
    /// Wall-clock time spent inside spans, in nanoseconds.
    pub wall_ns: u64,
    /// Hash-table build: entries inserted.
    pub hash_entries: u64,
    /// Hash-table build: approximate bytes of keys + row ids.
    pub hash_bytes: u64,
    /// Nest: groups (nested tuples) formed.
    pub nest_groups: u64,
    /// Nest: histogram of set cardinalities, log2 buckets
    /// `0, 1, 2-3, 4-7, 8-15, 16-31, 32-63, 64+`.
    pub group_card_hist: [u64; 8],
    /// Pseudo-selection: tuples kept but NULL-padded (linking condition
    /// not satisfied, atoms padded per the paper's σ̄).
    pub padded: u64,
    /// Linking selection outcomes under 3VL.
    pub pass: u64,
    pub fail: u64,
    pub unknown: u64,
    /// Largest partition count this operator ran with (0 = always
    /// sequential). Merged by maximum, not by sum: it describes *how* the
    /// operator ran, not how much work it did.
    pub partitions: u64,
}

/// Labels for [`OpStats::group_card_hist`] buckets.
pub const GROUP_CARD_BUCKETS: [&str; 8] = ["0", "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64+"];

fn card_bucket(card: u64) -> usize {
    match card {
        0 => 0,
        _ => ((64 - card.leading_zeros()) as usize).min(7),
    }
}

impl OpStats {
    /// Fold another operator's counters into this one (all fields are
    /// additive).
    pub fn merge(&mut self, other: &OpStats) {
        self.invocations += other.invocations;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.batches += other.batches;
        self.wall_ns += other.wall_ns;
        self.hash_entries += other.hash_entries;
        self.hash_bytes += other.hash_bytes;
        self.nest_groups += other.nest_groups;
        for (a, b) in self.group_card_hist.iter_mut().zip(other.group_card_hist) {
            *a += b;
        }
        self.padded += other.padded;
        self.pass += other.pass;
        self.fail += other.fail;
        self.unknown += other.unknown;
        self.partitions = self.partitions.max(other.partitions);
    }

    /// Record one nest group of the given cardinality.
    pub fn record_group(&mut self, card: usize) {
        self.nest_groups += 1;
        self.group_card_hist[card_bucket(card as u64)] += 1;
    }

    /// Record one linking-selection outcome.
    pub fn record_outcome(&mut self, t: Truth) {
        match t {
            Truth::True => self.pass += 1,
            Truth::False => self.fail += 1,
            Truth::Unknown => self.unknown += 1,
        }
    }

    /// Record a whole column of linking-selection outcomes at once — the
    /// batch-amortized path of the vectorized executors. Totals equal
    /// calling [`OpStats::record_outcome`] per element by construction.
    pub fn record_outcomes(&mut self, truths: &[Truth]) {
        for &t in truths {
            self.record_outcome(t);
        }
    }
}

struct Collector {
    /// Insertion order of qualified names, for stable reporting.
    order: Vec<String>,
    ops: HashMap<String, OpStats>,
}

impl Collector {
    fn merge(&mut self, name: &str, stats: &OpStats) {
        match self.ops.get_mut(name) {
            Some(e) => e.merge(stats),
            None => {
                self.order.push(name.to_string());
                self.ops.insert(name.to_string(), stats.clone());
            }
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    /// The scope-label stack, shared by the stats collector and the
    /// tracer so both qualify operators identically.
    static SCOPES: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Start collecting on this thread (clears any previous collection).
pub fn enable() {
    COLLECTOR.with(|c| {
        *c.borrow_mut() = Some(Collector {
            order: Vec::new(),
            ops: HashMap::new(),
        });
    });
}

/// Stop collecting and return the profile, or `None` if collection was
/// not enabled on this thread.
pub fn disable() -> Option<Profile> {
    let collector = COLLECTOR.with(|c| c.borrow_mut().take());
    collector.map(finish)
}

/// Whether collection is enabled on this thread.
pub fn is_enabled() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Snapshot the stats collected so far without stopping collection.
/// Returns an empty profile when collection is disabled.
pub fn snapshot() -> Profile {
    COLLECTOR.with(|c| match &*c.borrow() {
        Some(col) => Profile {
            ops: col
                .order
                .iter()
                .map(|n| (n.clone(), col.ops[n].clone()))
                .collect(),
            io: io_snapshot(),
            threads: 1,
            outcome: None,
        },
        None => Profile {
            ops: Vec::new(),
            io: None,
            threads: 1,
            outcome: None,
        },
    })
}

fn finish(col: Collector) -> Profile {
    Profile {
        ops: col
            .order
            .into_iter()
            .map(|n| {
                let stats = col.ops[&n].clone();
                (n, stats)
            })
            .collect(),
        io: io_snapshot(),
        threads: 1,
        outcome: None,
    }
}

fn io_snapshot() -> Option<IoStats> {
    if iosim::is_enabled() {
        Some(iosim::stats())
    } else {
        None
    }
}

/// A scope label (typically a query-block id like `b2`) qualifying every
/// span or record made while it is alive. Only the innermost scope
/// applies — recursive executors replace rather than concatenate. When the
/// tracer is active, the scope is also a trace phase, so operator events
/// nest under their block in the span tree.
pub struct Scope {
    active: bool,
    /// Keeps the trace phase open for the scope's lifetime.
    _phase: Option<trace::PhaseGuard>,
}

/// Push a scope label. The closure is only invoked when collection or
/// tracing is enabled, so disabled runs pay no formatting.
pub fn scope<F: FnOnce() -> String>(label: F) -> Scope {
    let traced = trace::enabled();
    if !is_enabled() && !traced {
        return Scope {
            active: false,
            _phase: None,
        };
    }
    let label = label();
    let phase = traced.then(|| trace::phase_str(label.clone()));
    SCOPES.with(|s| s.borrow_mut().push(label));
    Scope {
        active: true,
        _phase: phase,
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.active {
            SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Qualify `name` with the innermost active scope (`scope/name`), or
/// return it unchanged when no scope is active.
pub fn qualified(name: &str) -> String {
    SCOPES.with(|s| match s.borrow().last() {
        Some(scope) => format!("{scope}/{name}"),
        None => name.to_string(),
    })
}

struct SpanInner {
    name: String,
    start: Instant,
    stats: OpStats,
    /// Merge into the stats collector on drop (collection was enabled at
    /// creation; a span may also be live for the tracer alone).
    collect: bool,
}

/// A span timer: accumulates counters locally and merges them (plus wall
/// time) into the collector on drop; when the tracer is active it also
/// emits a [`trace::TraceEvent::Op`] under the same qualified name, which
/// is what lets traces and profiles correlate. Inert (`None` inner, no
/// allocation) when both collection and tracing are disabled.
pub struct Span {
    inner: Option<Box<SpanInner>>,
}

/// Open a span under the current scope. The name closure is only invoked
/// when collection or tracing is enabled.
pub fn span<F: FnOnce() -> String>(name: F) -> Span {
    let collect = is_enabled();
    if !collect && !trace::enabled() {
        return Span { inner: None };
    }
    let name = qualified(&name());
    Span {
        inner: Some(Box::new(SpanInner {
            name,
            start: Instant::now(),
            stats: OpStats {
                invocations: 1,
                ..OpStats::default()
            },
            collect,
        })),
    }
}

impl Span {
    /// Whether this span is live (collection was enabled at creation).
    /// Lets call sites skip building per-row data for dead spans.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    pub fn rows_in(&mut self, n: usize) {
        if let Some(i) = &mut self.inner {
            i.stats.rows_in += n as u64;
        }
    }

    pub fn rows_out(&mut self, n: usize) {
        if let Some(i) = &mut self.inner {
            i.stats.rows_out += n as u64;
        }
    }

    pub fn batch(&mut self) {
        if let Some(i) = &mut self.inner {
            i.stats.batches += 1;
        }
    }

    /// Record a hash-table build of `entries` entries and ~`bytes` bytes.
    pub fn hash_build(&mut self, entries: usize, bytes: usize) {
        if let Some(i) = &mut self.inner {
            i.stats.hash_entries += entries as u64;
            i.stats.hash_bytes += bytes as u64;
        }
    }

    /// Record one nest group of the given set cardinality.
    pub fn group(&mut self, card: usize) {
        if let Some(i) = &mut self.inner {
            i.stats.record_group(card);
        }
    }

    /// Record `n` tuples kept-but-NULL-padded by a pseudo-selection.
    pub fn padded(&mut self, n: usize) {
        if let Some(i) = &mut self.inner {
            i.stats.padded += n as u64;
        }
    }

    /// Record one linking-selection outcome.
    pub fn outcome(&mut self, t: Truth) {
        if let Some(i) = &mut self.inner {
            i.stats.record_outcome(t);
        }
    }

    /// Record that this operator ran partitioned `n` ways.
    pub fn partitions(&mut self, n: usize) {
        if let Some(i) = &mut self.inner {
            i.stats.partitions = i.stats.partitions.max(n as u64);
        }
    }

    /// Fold a batch of externally accumulated counters (e.g. from a worker
    /// partition) into this span. `invocations` of `stats` are added too,
    /// so workers contributing to a single logical invocation should leave
    /// that field at zero.
    pub fn absorb_stats(&mut self, stats: &OpStats) {
        if let Some(i) = &mut self.inner {
            i.stats.merge(stats);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let mut inner = *inner;
            inner.stats.wall_ns += inner.start.elapsed().as_nanos() as u64;
            if inner.collect {
                COLLECTOR.with(|c| {
                    if let Some(col) = &mut *c.borrow_mut() {
                        col.merge(&inner.name, &inner.stats);
                    }
                });
            }
            trace::emit(|| trace::TraceEvent::Op {
                name: inner.name.clone(),
                wall_ns: inner.stats.wall_ns,
                rows_in: inner.stats.rows_in,
                rows_out: inner.stats.rows_out,
            });
        }
    }
}

/// Captured collector + scope state, for handing instrumentation across a
/// thread boundary (the collector and scope stack are thread-local, so
/// worker threads spawned by `nra_engine::exec` would otherwise record
/// nothing).
///
/// The parent captures a `Handoff` before spawning; each worker runs its
/// closure under [`Handoff::run`], which installs a *private* collector
/// (plus the parent's innermost scope, so qualified names match) and
/// returns the worker's [`Profile`]. The parent then merges worker
/// profiles back with [`absorb`] in deterministic partition order.
/// Tracing does not cross threads: sinks are thread-local by design, so
/// workers emit no trace events.
#[derive(Clone)]
pub struct Handoff {
    collecting: bool,
    scope: Option<String>,
    /// The parent's per-query metrics registry, shared by reference: worker
    /// threads record into the same `Arc`'d registry, and every metric
    /// operation commutes, so the result is thread-count-invariant.
    query_metrics: Option<std::sync::Arc<metrics::Registry>>,
    /// The parent's live progress state, shared the same way: worker row
    /// ticks and memory high-water updates land in the same `Arc`'d
    /// atomics the coordinator (or any observer thread) snapshots.
    progress: Option<std::sync::Arc<progress::ProgressState>>,
}

impl Handoff {
    /// Capture the calling thread's collection state and innermost scope.
    pub fn capture() -> Handoff {
        Handoff {
            collecting: is_enabled(),
            scope: SCOPES.with(|s| s.borrow().last().cloned()),
            query_metrics: metrics::query_registry(),
            progress: progress::current(),
        }
    }

    /// Run `f` on the current (worker) thread. When the parent was
    /// collecting, a fresh collector and the parent's scope are installed
    /// for the duration and the worker's profile is handed back. The
    /// parent's per-query metrics registry and progress state (if any)
    /// are installed either way.
    pub fn run<T>(&self, f: impl FnOnce() -> T) -> (T, Option<Profile>) {
        let _metrics = metrics::install_query(self.query_metrics.clone());
        let _progress = progress::install(self.progress.clone());
        if !self.collecting {
            return (f(), None);
        }
        enable();
        let out = {
            let _scope = self.scope.clone().map(|label| scope(move || label));
            f()
        };
        (out, disable())
    }
}

/// Merge a worker profile's operators into this thread's collector
/// (no-op when collection is disabled). The worker's `io` and `threads`
/// fields are ignored — the I/O simulator and the thread budget belong to
/// the coordinating thread.
pub fn absorb(profile: &Profile) {
    COLLECTOR.with(|c| {
        if let Some(col) = &mut *c.borrow_mut() {
            for (name, stats) in &profile.ops {
                col.merge(name, stats);
            }
        }
    });
}

/// Update counters under an *already qualified* name without a timer —
/// for per-row hot paths that precompute their name once (see
/// [`qualified`]). No-op when collection is disabled.
pub fn record(name: &str, f: impl FnOnce(&mut OpStats)) {
    COLLECTOR.with(|c| {
        if let Some(col) = &mut *c.borrow_mut() {
            match col.ops.get_mut(name) {
                Some(e) => f(e),
                None => {
                    let mut stats = OpStats::default();
                    f(&mut stats);
                    col.order.push(name.to_string());
                    col.ops.insert(name.to_string(), stats);
                }
            }
        }
    });
}

/// A finished (or snapshotted) collection: per-operator stats in first-use
/// order, plus the I/O simulator's page counts when it was enabled.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    pub ops: Vec<(String, OpStats)>,
    pub io: Option<IoStats>,
    /// Worker-thread budget the query ran with (1 = sequential; 0 is
    /// treated as 1 for profiles built before the field existed).
    pub threads: usize,
    /// How the query finished, when the caller recorded it: `"ok"`,
    /// `"cancelled"`, `"resource-exhausted"`, `"worker-panicked"`, or
    /// `"error"` for any other failure. `None` for profiles collected
    /// outside a query lifecycle.
    pub outcome: Option<String>,
}

impl Profile {
    /// Look up an operator by its qualified name.
    pub fn get(&self, name: &str) -> Option<&OpStats> {
        self.ops.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// No operators recorded and no I/O folded in.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.io.is_none()
    }

    /// Sum of wall time over all operators (overlapping spans may double
    /// count; per-operator numbers are the meaningful ones).
    pub fn total_wall_ns(&self) -> u64 {
        self.ops.iter().map(|(_, s)| s.wall_ns).sum()
    }

    /// Hand-rolled JSON serialization (the workspace carries no serde).
    ///
    /// Schema:
    /// ```json
    /// {
    ///   "ops": [{"name": "b2/join", "invocations": 1, "rows_in": 0,
    ///            "rows_out": 0, "batches": 0, "wall_ns": 0,
    ///            "hash_entries": 0, "hash_bytes": 0, "nest_groups": 0,
    ///            "group_card_hist": {"0": 0, "1": 0, ...},
    ///            "padded": 0, "pass": 0, "fail": 0, "unknown": 0}],
    ///   "io": {"seq_pages": 0, "rand_hits": 0, "rand_misses": 0} | null,
    ///   "total_wall_ns": 0
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"ops\": [");
        for (i, (name, s)) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": ");
            json::write_string(&mut out, name);
            for (key, v) in [
                ("invocations", s.invocations),
                ("rows_in", s.rows_in),
                ("rows_out", s.rows_out),
                ("batches", s.batches),
                ("wall_ns", s.wall_ns),
                ("hash_entries", s.hash_entries),
                ("hash_bytes", s.hash_bytes),
                ("nest_groups", s.nest_groups),
            ] {
                out.push_str(&format!(", \"{key}\": {v}"));
            }
            out.push_str(", \"group_card_hist\": {");
            for (j, (label, count)) in GROUP_CARD_BUCKETS.iter().zip(s.group_card_hist).enumerate()
            {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{label}\": {count}"));
            }
            out.push('}');
            for (key, v) in [
                ("padded", s.padded),
                ("pass", s.pass),
                ("fail", s.fail),
                ("unknown", s.unknown),
                ("partitions", s.partitions),
            ] {
                out.push_str(&format!(", \"{key}\": {v}"));
            }
            out.push('}');
        }
        out.push_str("], \"io\": ");
        match &self.io {
            Some(io) => out.push_str(&format!(
                "{{\"seq_pages\": {}, \"rand_hits\": {}, \"rand_misses\": {}}}",
                io.seq_pages, io.rand_hits, io.rand_misses
            )),
            None => out.push_str("null"),
        }
        out.push_str(&format!(", \"threads\": {}", self.threads.max(1)));
        if let Some(outcome) = &self.outcome {
            out.push_str(", \"outcome\": ");
            json::write_string(&mut out, outcome);
        }
        out.push_str(&format!(", \"total_wall_ns\": {}}}", self.total_wall_ns()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        assert!(!is_enabled());
        let mut sp = span(|| unreachable!("name closure must not run when disabled"));
        assert!(!sp.active());
        sp.rows_in(5);
        sp.rows_out(5);
        drop(sp);
        assert!(snapshot().is_empty());
        assert!(disable().is_none());
    }

    #[test]
    fn spans_merge_under_scopes() {
        enable();
        {
            let _s = scope(|| "b2".to_string());
            let mut sp = span(|| "join".to_string());
            sp.rows_in(10);
            sp.rows_out(4);
            sp.hash_build(3, 96);
        }
        {
            let _s = scope(|| "b2".to_string());
            let mut sp = span(|| "join".to_string());
            sp.rows_in(2);
        }
        let profile = disable().unwrap();
        let j = profile.get("b2/join").unwrap();
        assert_eq!(j.invocations, 2);
        assert_eq!(j.rows_in, 12);
        assert_eq!(j.rows_out, 4);
        assert_eq!(j.hash_entries, 3);
        assert_eq!(j.hash_bytes, 96);
        assert!(j.wall_ns > 0);
    }

    #[test]
    fn innermost_scope_wins() {
        enable();
        {
            let _outer = scope(|| "b1".to_string());
            let _inner = scope(|| "b2".to_string());
            span(|| "nest".to_string()).group(3);
        }
        let profile = disable().unwrap();
        assert!(profile.get("b2/nest").is_some());
        assert!(profile.get("b1/nest").is_none());
    }

    #[test]
    fn group_histogram_buckets() {
        let mut s = OpStats::default();
        for card in [0usize, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 63, 64, 1000] {
            s.record_group(card);
        }
        assert_eq!(s.nest_groups, 14);
        assert_eq!(s.group_card_hist, [1, 1, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn outcome_counters() {
        let mut s = OpStats::default();
        s.record_outcome(Truth::True);
        s.record_outcome(Truth::False);
        s.record_outcome(Truth::False);
        s.record_outcome(Truth::Unknown);
        assert_eq!((s.pass, s.fail, s.unknown), (1, 2, 1));
    }

    #[test]
    fn record_uses_raw_name_and_creates_entries() {
        enable();
        record("b3/link", |s| s.record_outcome(Truth::True));
        record("b3/link", |s| s.record_outcome(Truth::Unknown));
        let profile = disable().unwrap();
        let l = profile.get("b3/link").unwrap();
        assert_eq!((l.pass, l.unknown), (1, 1));
    }

    #[test]
    fn json_shape() {
        enable();
        {
            let mut sp = span(|| "nest".to_string());
            sp.rows_in(6);
            sp.group(2);
            sp.group(0);
            sp.rows_out(2);
        }
        let profile = disable().unwrap();
        let json = profile.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\": \"nest\""));
        assert!(json.contains("\"rows_in\": 6"));
        assert!(json.contains("\"nest_groups\": 2"));
        assert!(json.contains("\"group_card_hist\": {\"0\": 1, \"1\": 0, \"2-3\": 1"));
        assert!(json.contains("\"io\": null"));
    }

    #[test]
    fn io_stats_fold_into_snapshot() {
        use nra_storage::iosim::IoConfig;
        enable();
        iosim::enable(IoConfig::default());
        iosim::charge_seq_scan(1000, 4);
        span(|| "scan".to_string()).rows_out(1000);
        let profile = disable().unwrap();
        let io = iosim::disable().unwrap();
        assert!(io.seq_pages > 0);
        assert_eq!(profile.io.unwrap().seq_pages, io.seq_pages);
        assert!(profile.to_json().contains("\"seq_pages\""));
    }

    #[test]
    fn json_escapes_qualified_names() {
        enable();
        {
            let _s = scope(|| "b\"2\\".to_string());
            span(|| "υ-nest".to_string()).rows_out(1);
        }
        let json = disable().unwrap().to_json();
        assert!(json.contains("\"name\": \"b\\\"2\\\\/υ-nest\""), "{json}");
        let parsed = json::Json::parse(&json).unwrap();
        let ops = parsed.get("ops").unwrap().as_arr().unwrap();
        assert_eq!(ops[0].get("name").unwrap().as_str(), Some("b\"2\\/υ-nest"));
    }

    #[test]
    fn span_emits_trace_op_event_without_collector() {
        assert!(!is_enabled());
        let (sink, handle) = trace::RingSink::with_capacity(16);
        trace::start(vec![Box::new(sink)]);
        {
            let _s = scope(|| "b9".to_string());
            let mut sp = span(|| "join".to_string());
            assert!(sp.active(), "span is live for the tracer alone");
            sp.rows_in(3);
            sp.rows_out(1);
        }
        trace::stop();
        // Nothing reached the (disabled) stats collector...
        assert!(snapshot().is_empty());
        // ...but the tracer saw the block phase and the qualified op.
        let t = handle.take();
        assert!(t.events().any(|e| matches!(
            e,
            trace::TraceEvent::Op { name, rows_in: 3, rows_out: 1, .. } if name == "b9/join"
        )));
        assert!(t.phase_wall_ns("b9").is_some());
    }
}
