//! Minimal hand-rolled JSON support shared by every observability
//! artifact (the workspace deliberately carries no serde).
//!
//! Two halves:
//!
//! * [`escape`] / [`write_string`] — the one string-escaping routine used
//!   by [`crate::Profile::to_json`], the trace JSONL sink and the bench
//!   profile bundles, so qualified operator names with quotes, backslashes
//!   or control characters serialize identically everywhere;
//! * [`Json`] + [`Json::parse`] — a small recursive-descent reader, enough
//!   to load the committed `BENCH_*.json` baselines back for the perf
//!   regression check (`nra-bench::baseline`).

use std::fmt;

/// Append the JSON string literal for `s` (including the surrounding
/// quotes) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The JSON string literal for `s`, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_string(&mut out, s);
    out
}

/// A parsed JSON value. Numbers are kept as `f64`, which is exact for the
/// integer counters the profiles carry (all far below 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order is preserved (profiles report operators in first-use
    /// order, and diffs should too).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number (exact only below 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("tab\there"), "\"tab\\there\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        // Non-ASCII passes through raw (JSON is UTF-8).
        assert_eq!(escape("υ-nest σ̄"), "\"υ-nest σ̄\"");
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        for s in [
            "plain",
            "qualified/op[hash]",
            "a\"quote",
            "back\\slash",
            "new\nline and \t tab",
            "control \u{2} char",
            "non-ascii: υ σ̄ ⟕ π — 日本語",
        ] {
            let doc = format!("{{\"name\": {}}}", escape(s));
            let parsed = Json::parse(&doc).unwrap();
            assert_eq!(parsed.get("name").unwrap().as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn parses_profile_shaped_document() {
        let doc = r#"{"ops": [{"name": "b2/join", "rows_in": 10, "wall_ns": 123456789},
                      {"name": "nest[sort]", "rows_in": 3, "wall_ns": 42}],
                      "io": null, "total_wall_ns": 123456831}"#;
        let v = Json::parse(doc).unwrap();
        let ops = v.get("ops").unwrap().as_arr().unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].get("name").unwrap().as_str(), Some("b2/join"));
        assert_eq!(ops[0].get("rows_in").unwrap().as_u64(), Some(10));
        assert_eq!(v.get("io"), Some(&Json::Null));
        assert_eq!(v.get("total_wall_ns").unwrap().as_u64(), Some(123456831));
    }

    #[test]
    fn parses_numbers_and_nesting() {
        let v = Json::parse("[-1.5, 2e3, 0, [true, false, null], {\"k\": {\"n\": 7}}]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_f64(), Some(-1.5));
        assert_eq!(items[1].as_f64(), Some(2000.0));
        assert_eq!(items[3].as_arr().unwrap().len(), 3);
        assert_eq!(
            items[4].get("k").unwrap().get("n").unwrap().as_u64(),
            Some(7)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
