//! Process-wide query registry: the currently-running queries and a
//! bounded ring of completed-query records.
//!
//! This is the data behind the `nra_sys.running` / `nra_sys.queries`
//! system tables and the CLI's `:ps` / `:history` — and the state a
//! future serving front end's `SHOW PROCESSLIST` will read. The query
//! entry point [`register`]s each statement before execution (sharing
//! the query's [`crate::progress::ProgressState`], so any thread can
//! watch it advance) and [`QueryRegistry::complete`]s it afterwards,
//! moving it into the completed ring. Introspection queries themselves
//! are *not* registered (the caller flags and skips them), so reading
//! `nra_sys.queries` does not grow `nra_sys.queries`.
//!
//! The completed ring is bounded at [`RING_CAPACITY`] records: the
//! registry's memory footprint is O(capacity × statement length)
//! regardless of how long the process serves queries.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

use crate::progress::ProgressState;

/// Completed-query records kept by the [`global`] registry.
pub const RING_CAPACITY: usize = 256;

/// One finished query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// Process-wide query id (monotonically increasing from 1).
    pub id: u64,
    /// The statement, whitespace-normalized (see [`normalize_sql`]).
    pub sql: String,
    /// `"ok"`, `"cancelled"`, `"resource-exhausted"`, `"worker-panicked"`,
    /// `"sql"`, `"storage"`, or `"error"`.
    pub outcome: String,
    pub wall_ms: u64,
    /// Result rows produced (0 on error).
    pub rows: u64,
    /// Worker-thread budget the query ran with.
    pub threads: u64,
    /// Worst per-node cardinality Q-error ×100 (100 = perfect estimate;
    /// 0 = no estimate/actual pair was available).
    pub qerror_x100: u64,
    /// Governed-allocation high-water mark (0 without a memory budget).
    pub mem_bytes: u64,
    /// The execution strategy that answered the query (auto resolved to
    /// its concrete choice).
    pub strategy: String,
    /// The session the query ran under (0 = none: internal or legacy
    /// callers that bypassed the session layer).
    pub session: u64,
}

/// One currently-executing query.
#[derive(Clone)]
pub struct RunningQuery {
    pub id: u64,
    /// The statement, whitespace-normalized.
    pub sql: String,
    /// Live progress, shared with the executing threads.
    pub progress: Arc<ProgressState>,
}

struct Inner {
    next_id: u64,
    running: Vec<RunningQuery>,
    completed: VecDeque<QueryRecord>,
}

/// A registry of running and recently-completed queries.
pub struct QueryRegistry {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl QueryRegistry {
    pub fn with_capacity(capacity: usize) -> QueryRegistry {
        QueryRegistry {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                next_id: 1,
                running: Vec::new(),
                completed: VecDeque::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enter a query into the running table, assigning its process-wide
    /// id. The statement is whitespace-normalized for display.
    pub fn register(&self, sql: &str, progress: Arc<ProgressState>) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.running.push(RunningQuery {
            id,
            sql: normalize_sql(sql),
            progress,
        });
        id
    }

    /// Move query `record.id` from the running table into the completed
    /// ring (evicting the oldest record at capacity). Unknown ids still
    /// append a completed record, so a lost registration never loses the
    /// outcome.
    pub fn complete(&self, record: QueryRecord) {
        let mut inner = self.lock();
        inner.running.retain(|r| r.id != record.id);
        if inner.completed.len() >= self.capacity {
            inner.completed.pop_front();
        }
        inner.completed.push_back(record);
    }

    /// Snapshot of the running table, in registration (id) order.
    pub fn running(&self) -> Vec<RunningQuery> {
        self.lock().running.clone()
    }

    /// Snapshot of the completed ring, oldest first.
    pub fn completed(&self) -> Vec<QueryRecord> {
        self.lock().completed.iter().cloned().collect()
    }
}

/// The process-wide registry.
pub fn global() -> &'static QueryRegistry {
    static GLOBAL: OnceLock<QueryRegistry> = OnceLock::new();
    GLOBAL.get_or_init(|| QueryRegistry::with_capacity(RING_CAPACITY))
}

/// Collapse runs of whitespace to single spaces and trim — the canonical
/// statement form stored by the registry and the slow-query log.
///
/// CONTRACT: this is a byte-for-byte copy of `nra_sql::normalize::
/// normalize`, the plan-cache key normalizer. The two cannot share code
/// (`nra-sql` depends on this crate for trace events, so this crate
/// cannot call into it), but they must never diverge — a registry record
/// must display exactly the string the plan cache keyed on. The
/// agreement is pinned by a corpus test in `nra-sql::normalize`; change
/// both together or that suite fails.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut last_space = true;
    for ch in sql.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(ch);
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, sql: &str) -> QueryRecord {
        QueryRecord {
            id,
            sql: sql.to_string(),
            outcome: "ok".to_string(),
            wall_ms: 1,
            rows: 2,
            threads: 1,
            qerror_x100: 100,
            mem_bytes: 0,
            strategy: "original".to_string(),
            session: 0,
        }
    }

    #[test]
    fn normalization_collapses_whitespace() {
        assert_eq!(
            normalize_sql("  select *\n\t from   t  "),
            "select * from t"
        );
        assert_eq!(normalize_sql("select 1"), "select 1");
    }

    #[test]
    fn register_complete_lifecycle() {
        let reg = QueryRegistry::with_capacity(8);
        let p = Arc::new(ProgressState::new());
        let id = reg.register("select *  from t", p);
        assert_eq!(reg.running().len(), 1);
        assert_eq!(reg.running()[0].sql, "select * from t");
        reg.complete(record(id, "select * from t"));
        assert!(reg.running().is_empty());
        assert_eq!(reg.completed().len(), 1);
        assert_eq!(reg.completed()[0].id, id);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let reg = QueryRegistry::with_capacity(8);
        let a = reg.register("q1", Arc::new(ProgressState::new()));
        let b = reg.register("q2", Arc::new(ProgressState::new()));
        assert!(b > a);
        assert_eq!(reg.running().len(), 2);
    }

    #[test]
    fn completed_ring_is_bounded() {
        let reg = QueryRegistry::with_capacity(3);
        for i in 0..10u64 {
            let id = reg.register(&format!("q{i}"), Arc::new(ProgressState::new()));
            reg.complete(record(id, &format!("q{i}")));
        }
        let done = reg.completed();
        assert_eq!(done.len(), 3);
        // Oldest first; the earliest 7 were evicted.
        assert_eq!(
            done.iter().map(|r| r.sql.as_str()).collect::<Vec<_>>(),
            ["q7", "q8", "q9"]
        );
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = Arc::new(QueryRegistry::with_capacity(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    for i in 0..8 {
                        let id = reg.register(&format!("t{t}q{i}"), Arc::new(ProgressState::new()));
                        reg.complete(record(id, &format!("t{t}q{i}")));
                    }
                });
            }
        });
        assert!(reg.running().is_empty());
        assert_eq!(reg.completed().len(), 32);
        let mut ids: Vec<u64> = reg.completed().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 32, "no record was lost or duplicated");
    }
}
