//! Engine-wide metrics registry: counters, gauges, and fixed-bucket
//! log2 histograms, exported as Prometheus-style text exposition or JSONL.
//!
//! Two scopes exist:
//!
//! * **process-cumulative** — the [`global`] registry, a process-wide
//!   singleton accumulating across queries (queries executed, rows
//!   produced, errors by variant, governor outcomes, memory high-water
//!   marks, Q-error distribution);
//! * **per-query** — an [`Arc<Registry>`] installed around one query via
//!   [`install_query`] and carried across worker threads by
//!   [`crate::Handoff`], so partition-parallel execution lands in the same
//!   registry the coordinator reads.
//!
//! Everything recorded here is *commutative* (counter adds, gauge maxima,
//! histogram observations), so a per-query registry is byte-identical
//! whatever thread count or partition order the query ran with — the same
//! determinism contract the `OpStats` handoff already honours. Wall-clock
//! durations therefore never enter the per-query scope.
//!
//! The registry is zero-dependency: a `Mutex<BTreeMap>` keyed by
//! `(name, labels)`. The BTreeMap ordering is what makes the exposition
//! output deterministic without a sort at render time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::json;

/// Upper bounds of the fixed log2 histogram buckets: `le = 2^i` for
/// `i in 0..15`, plus a final `+Inf` bucket. An observation of `v` lands
/// in the first bucket with `v <= le`.
pub const HIST_LE: [u64; 15] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
];

/// Total bucket count including `+Inf`.
pub const HIST_BUCKETS: usize = HIST_LE.len() + 1;

fn bucket_for(v: u64) -> usize {
    HIST_LE
        .iter()
        .position(|&le| v <= le)
        .unwrap_or(HIST_LE.len())
}

/// A metric identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl Key {
    fn new(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Key {
            name: name.to_string(),
            labels,
        }
    }
}

/// One recorded metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    Counter(u64),
    Gauge(u64),
    Hist {
        count: u64,
        sum: u64,
        buckets: [u64; HIST_BUCKETS],
    },
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Hist { .. } => "histogram",
        }
    }
}

/// A thread-safe metrics registry. All mutation goes through one poisoned-
/// tolerant mutex; the hot paths here are per-query events (not per-row),
/// so contention is negligible.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<Key, Metric>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<Key, Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `delta` to a counter (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let mut map = self.lock();
        match map
            .entry(Key::new(name, labels))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += delta,
            _ => debug_assert!(false, "metric {name} is not a counter"),
        }
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let mut map = self.lock();
        map.insert(Key::new(name, labels), Metric::Gauge(value));
    }

    /// Raise a gauge to `value` if it is below it (high-water semantics;
    /// commutative, so safe to call from worker threads).
    pub fn gauge_max(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let mut map = self.lock();
        match map
            .entry(Key::new(name, labels))
            .or_insert(Metric::Gauge(0))
        {
            Metric::Gauge(v) => *v = (*v).max(value),
            _ => debug_assert!(false, "metric {name} is not a gauge"),
        }
    }

    /// Record one observation into a log2 histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let mut map = self.lock();
        match map.entry(Key::new(name, labels)).or_insert(Metric::Hist {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }) {
            Metric::Hist {
                count,
                sum,
                buckets,
            } => {
                *count += 1;
                *sum += value;
                buckets[bucket_for(value)] += 1;
            }
            _ => debug_assert!(false, "metric {name} is not a histogram"),
        }
    }

    /// Copy the current contents out for rendering.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Clear every metric (used by tests; production registries only grow).
    pub fn reset(&self) {
        self.lock().clear();
    }
}

/// The process-cumulative registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

thread_local! {
    /// The per-query registry installed on this thread, if any.
    static QUERY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// Install `reg` as this thread's per-query registry for the guard's
/// lifetime (replacing and later restoring any previous one). Pass `None`
/// to explicitly run without a per-query scope.
pub fn install_query(reg: Option<Arc<Registry>>) -> QueryGuard {
    let prev = QUERY.with(|q| q.borrow_mut().take());
    QUERY.with(|q| *q.borrow_mut() = reg);
    QueryGuard { prev }
}

/// Restores the previously installed per-query registry on drop.
pub struct QueryGuard {
    prev: Option<Arc<Registry>>,
}

impl Drop for QueryGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        QUERY.with(|q| *q.borrow_mut() = prev);
    }
}

/// The per-query registry installed on this thread, if any.
pub fn query_registry() -> Option<Arc<Registry>> {
    QUERY.with(|q| q.borrow().clone())
}

/// Apply `f` to every active scope: the global registry always, plus the
/// per-query registry when one is installed. This is what instrumentation
/// points (governor hooks, the query lifecycle) call so both scopes agree.
pub fn both(f: impl Fn(&Registry)) {
    f(global());
    QUERY.with(|q| {
        if let Some(reg) = &*q.borrow() {
            f(reg);
        }
    });
}

/// An immutable copy of a registry's contents, ready to render.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub entries: Vec<(Key, Metric)>,
}

fn write_label_value(out: &mut String, v: &str) {
    // Prometheus label values escape `\`, `"` and newlines; the JSON
    // escaper covers those (it also quotes the value, which matches the
    // exposition syntax, and escapes control characters our values never
    // contain anyway).
    json::write_string(out, v);
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push('=');
        write_label_value(out, v);
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        write_label_value(out, v);
    }
    out.push('}');
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a metric by name and exact label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        let key = Key::new(name, labels);
        self.entries.iter().find(|(k, _)| *k == key).map(|(_, m)| m)
    }

    /// Sum a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, m)| match m {
                Metric::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Prometheus-style text exposition: a `# TYPE` line per metric name,
    /// then one sample line per label set (histograms expand to cumulative
    /// `_bucket{le=...}` samples plus `_sum` and `_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, metric) in &self.entries {
            if last_name != Some(key.name.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", key.name, metric.type_name()));
                last_name = Some(key.name.as_str());
            }
            match metric {
                Metric::Counter(v) | Metric::Gauge(v) => {
                    out.push_str(&key.name);
                    write_labels(&mut out, &key.labels, None);
                    out.push_str(&format!(" {v}\n"));
                }
                Metric::Hist {
                    count,
                    sum,
                    buckets,
                } => {
                    let mut cum = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cum += b;
                        let le = if i < HIST_LE.len() {
                            HIST_LE[i].to_string()
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&format!("{}_bucket", key.name));
                        write_labels(&mut out, &key.labels, Some(("le", &le)));
                        out.push_str(&format!(" {cum}\n"));
                    }
                    out.push_str(&format!("{}_sum", key.name));
                    write_labels(&mut out, &key.labels, None);
                    out.push_str(&format!(" {sum}\n"));
                    out.push_str(&format!("{}_count", key.name));
                    write_labels(&mut out, &key.labels, None);
                    out.push_str(&format!(" {count}\n"));
                }
            }
        }
        out
    }

    /// JSONL exposition: one JSON object per metric, in registry order.
    ///
    /// ```json
    /// {"metric": "nra_queries_total", "type": "counter",
    ///  "labels": {"outcome": "ok"}, "value": 3}
    /// {"metric": "nra_qerror_x100", "type": "histogram",
    ///  "labels": {}, "count": 9, "sum": 1234,
    ///  "buckets": {"1": 0, "2": 1, ..., "+Inf": 0}}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (key, metric) in &self.entries {
            out.push_str("{\"metric\": ");
            json::write_string(&mut out, &key.name);
            out.push_str(&format!(", \"type\": \"{}\"", metric.type_name()));
            out.push_str(", \"labels\": {");
            for (i, (k, v)) in key.labels.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                json::write_string(&mut out, k);
                out.push_str(": ");
                json::write_string(&mut out, v);
            }
            out.push('}');
            match metric {
                Metric::Counter(v) | Metric::Gauge(v) => {
                    out.push_str(&format!(", \"value\": {v}"));
                }
                Metric::Hist {
                    count,
                    sum,
                    buckets,
                } => {
                    out.push_str(&format!(
                        ", \"count\": {count}, \"sum\": {sum}, \"buckets\": {{"
                    ));
                    for (i, b) in buckets.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        if i < HIST_LE.len() {
                            out.push_str(&format!("\"{}\": {b}", HIST_LE[i]));
                        } else {
                            out.push_str(&format!("\"+Inf\": {b}"));
                        }
                    }
                    out.push('}');
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 0);
        assert_eq!(bucket_for(2), 1);
        assert_eq!(bucket_for(3), 2);
        assert_eq!(bucket_for(16384), 14);
        assert_eq!(bucket_for(16385), 15);
        assert_eq!(bucket_for(u64::MAX), 15);
    }

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let r = Registry::new();
        r.counter_add("c_total", &[("k", "a")], 2);
        r.counter_add("c_total", &[("k", "a")], 3);
        r.counter_add("c_total", &[("k", "b")], 1);
        r.gauge_set("g", &[], 7);
        r.gauge_max("g", &[], 3); // stays 7
        r.gauge_max("g", &[], 11);
        r.observe("h", &[], 1);
        r.observe("h", &[], 100);
        let snap = r.snapshot();
        assert_eq!(
            snap.get("c_total", &[("k", "a")]),
            Some(&Metric::Counter(5))
        );
        assert_eq!(snap.counter_total("c_total"), 6);
        assert_eq!(snap.get("g", &[]), Some(&Metric::Gauge(11)));
        match snap.get("h", &[]).unwrap() {
            Metric::Hist {
                count,
                sum,
                buckets,
            } => {
                assert_eq!((*count, *sum), (2, 101));
                assert_eq!(buckets[0], 1);
                assert_eq!(buckets[bucket_for(100)], 1);
            }
            other => panic!("not a histogram: {other:?}"),
        }
    }

    #[test]
    fn label_order_is_normalized() {
        let r = Registry::new();
        r.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        r.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        let snap = r.snapshot();
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.counter_total("c"), 2);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter_add("nra_queries_total", &[("outcome", "ok")], 3);
        r.observe("nra_qerror_x100", &[], 100);
        r.observe("nra_qerror_x100", &[], 300);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE nra_qerror_x100 histogram\n"));
        assert!(text.contains("# TYPE nra_queries_total counter\n"));
        assert!(text.contains("nra_queries_total{outcome=\"ok\"} 3\n"));
        assert!(text.contains("nra_qerror_x100_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("nra_qerror_x100_sum 400\n"));
        assert!(text.contains("nra_qerror_x100_count 2\n"));
        // Cumulative buckets: le="256" already holds both observations.
        assert!(text.contains("nra_qerror_x100_bucket{le=\"512\"} 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_add("c", &[("msg", "a\"b\\c\nd")], 1);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("c{msg=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
        let jsonl = r.snapshot().to_jsonl();
        let parsed = json::Json::parse(jsonl.trim()).unwrap();
        assert_eq!(
            parsed.get("labels").unwrap().get("msg").unwrap().as_str(),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn jsonl_parses_back() {
        let r = Registry::new();
        r.counter_add("c_total", &[("k", "v")], 9);
        r.observe("h", &[], 5);
        let jsonl = r.snapshot().to_jsonl();
        for line in jsonl.lines() {
            let parsed = json::Json::parse(line).unwrap();
            assert!(parsed.get("metric").unwrap().as_str().is_some());
        }
        assert_eq!(jsonl.lines().count(), 2);
    }

    #[test]
    fn query_scope_install_and_both() {
        let reg = Arc::new(Registry::new());
        {
            let _g = install_query(Some(reg.clone()));
            assert!(query_registry().is_some());
            both(|m| m.counter_add("scoped_total", &[], 1));
        }
        assert!(query_registry().is_none());
        assert_eq!(reg.snapshot().counter_total("scoped_total"), 1);
        // The global registry saw it too.
        assert!(global().snapshot().counter_total("scoped_total") >= 1);
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let r = Registry::new();
        r.counter_add("z", &[], 1);
        r.counter_add("a", &[("x", "2")], 1);
        r.counter_add("a", &[("x", "1")], 1);
        let names: Vec<String> = r
            .snapshot()
            .entries
            .iter()
            .map(|(k, _)| format!("{}{:?}", k.name, k.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
