//! A zero-dependency TCP front end for the nested relational engine.
//!
//! The server speaks a newline-delimited text protocol over
//! `std::net::TcpListener`, one OS thread and one [`nra::Session`] per
//! connection — the session carries the connection's default
//! [`QueryOptions`](nra::QueryOptions) and prepared statements, while
//! the shared [`Database`] behind it provides the catalog (concurrent
//! reads under its `RwLock`), the process-wide plan cache, and the
//! admission controller that bounds total concurrency.
//!
//! # Protocol
//!
//! Requests are single lines. A line starting with `.` is a command;
//! anything else is executed as SQL:
//!
//! ```text
//! .ping                      liveness probe
//! .session                   one-row result with this connection's session id
//! .set <key> <value>         set a session default: engine, threads,
//!                            timeout_ms, mem_limit, plan_cache
//!                            (value `off`/`auto` resets to the default)
//! .prepare <name> <sql>      validate + remember a statement
//! .exec <name>               run a prepared statement
//! .quit                      close the connection
//! select ...                 executed as SQL under the session defaults
//! ```
//!
//! Every response is one of:
//!
//! ```text
//! ok <nrows> <ncols>         success; if ncols > 0 a tab-separated
//! <header line>              header line and nrows tab-separated data
//! <data lines...>            lines follow (tabs/newlines/backslashes
//! .                          escaped); `.` terminates the response
//!
//! err <kind>: <message>      failure (kind = sql | storage | <engine
//! .                          error variant, e.g. admission, cancelled>)
//! ```
//!
//! The framing is identical for commands and SQL so clients need exactly
//! one parser ([`Client`] is that parser, used by the integration tests
//! and the `bench --serve` driver).
//!
//! `NRA_SERVER_POLL_MS` tunes how often blocked readers wake up (both
//! the server's shutdown poll and the client's read timeout); the
//! default is 100 ms, and malformed values are rejected up front.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nra::{Database, Engine, NraError, QueryOptions, Session, Strategy};

/// Default wake-up cadence for blocked socket readers, in milliseconds.
const DEFAULT_POLL_MS: u64 = 100;

/// How often a blocked reader wakes up — to check the shutdown flag on
/// the server side, or to re-poll the socket in [`Client`]. Bounds
/// shutdown latency; invisible on the wire otherwise. Configurable via
/// the `NRA_SERVER_POLL_MS` environment variable; a malformed or zero
/// value is an `InvalidInput` error (from [`serve`] and
/// [`Client::connect`]), not a silent fallback.
fn poll_interval() -> io::Result<Duration> {
    let raw = match std::env::var("NRA_SERVER_POLL_MS") {
        Err(_) => return Ok(Duration::from_millis(DEFAULT_POLL_MS)),
        Ok(v) => v,
    };
    match raw.trim().parse::<u64>() {
        Ok(ms) if ms > 0 => Ok(Duration::from_millis(ms)),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid NRA_SERVER_POLL_MS=`{raw}`: must be a positive millisecond count"),
        )),
    }
}

// ---------------------------------------------------------------------
// Wire format: escaping and response framing shared by server + client.
// ---------------------------------------------------------------------

/// Escape a field for the tab-separated wire format.
fn escape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]; unknown escapes pass through verbatim.
fn unescape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// The error label on the wire: the same taxonomy the metrics registry
/// uses for `nra_errors_total{variant=...}`.
fn error_kind(e: &NraError) -> &'static str {
    match e {
        NraError::Sql(_) => "sql",
        NraError::Storage(_) => "storage",
        NraError::Engine(e) => e.variant_name(),
    }
}

/// A parsed `ok` response: column names plus stringified rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

// ---------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------

/// Start serving `db` on `addr` (`127.0.0.1:0` picks an ephemeral
/// port). Returns immediately; the accept loop runs on a background
/// thread until [`ServerHandle::shutdown`].
pub fn serve(db: Database, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let poll = poll_interval()?;
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("nra-server-accept".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop.load(Ordering::SeqCst) {
                            // The wake-up connection from shutdown()
                            // (or a client racing it): drop and exit.
                            return;
                        }
                        let session = db.connect();
                        let stop = Arc::clone(&stop);
                        let handle = std::thread::Builder::new()
                            .name("nra-server-conn".into())
                            .spawn(move || {
                                // Connection errors only affect that
                                // connection; the socket closing is the
                                // ordinary end of a conversation.
                                let _ = Connection::new(stream, session, stop, poll).run();
                            })
                            .expect("spawn connection thread");
                        conns.lock().unwrap().push(handle);
                    }
                    Err(_) if stop.load(Ordering::SeqCst) => return,
                    Err(_) => continue,
                }
            })?
    };

    Ok(ServerHandle {
        addr: local_addr,
        stop,
        accept: Some(accept),
        conns,
    })
}

/// Handle to a running server: its address and a clean-shutdown switch.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (resolves the port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, and join every connection
    /// thread. In-flight queries finish; blocked readers notice the
    /// flag within one poll interval (`NRA_SERVER_POLL_MS`).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle still stops the accept loop (connection
        // threads die with their sockets or at the next poll).
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// The per-connection session defaults, rebuilt into [`QueryOptions`]
/// after every `.set` (mirrors the CLI shell's knobs).
#[derive(Default)]
struct ConnConfig {
    engine: Option<Engine>,
    threads: Option<usize>,
    timeout_ms: Option<u64>,
    mem_limit: Option<u64>,
    plan_cache: Option<bool>,
}

impl ConnConfig {
    fn options(&self) -> QueryOptions {
        let mut opts = QueryOptions::new();
        if let Some(engine) = self.engine {
            opts = opts.engine(engine);
        }
        if let Some(n) = self.threads {
            opts = opts.threads(n);
        }
        if let Some(ms) = self.timeout_ms {
            opts = opts.timeout_ms(ms);
        }
        if let Some(bytes) = self.mem_limit {
            opts = opts.mem_limit_bytes(bytes);
        }
        if let Some(on) = self.plan_cache {
            opts = opts.plan_cache(on);
        }
        opts
    }
}

struct Connection {
    stream: TcpStream,
    session: Session,
    config: ConnConfig,
    stop: Arc<AtomicBool>,
    poll: Duration,
    /// Bytes received but not yet terminated by a newline.
    pending: Vec<u8>,
}

impl Connection {
    fn new(
        stream: TcpStream,
        session: Session,
        stop: Arc<AtomicBool>,
        poll: Duration,
    ) -> Connection {
        Connection {
            stream,
            session,
            config: ConnConfig::default(),
            stop,
            poll,
            pending: Vec::new(),
        }
    }

    fn run(mut self) -> io::Result<()> {
        self.stream.set_read_timeout(Some(self.poll))?;
        self.stream.set_nodelay(true).ok();
        loop {
            let line = match self.read_line()? {
                Some(line) => line,
                None => return Ok(()), // EOF or shutdown
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == ".quit" {
                self.ok_empty()?;
                return Ok(());
            }
            self.handle(line)?;
        }
    }

    /// Read one newline-terminated line, polling the shutdown flag
    /// while blocked. `None` means the peer closed or we are shutting
    /// down.
    fn read_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop(); // the newline
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.stop.load(Ordering::SeqCst) {
                return Ok(None);
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => return Ok(None),
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn handle(&mut self, line: &str) -> io::Result<()> {
        if let Some(cmd) = line.strip_prefix('.') {
            let (name, args) = cmd.split_once(' ').unwrap_or((cmd, ""));
            let args = args.trim();
            match name {
                "ping" => self.ok_empty(),
                "session" => {
                    let id = self.session.id().to_string();
                    self.ok_table(&["session"], &[vec![id]])
                }
                "set" => match self.cmd_set(args) {
                    Ok(()) => self.ok_empty(),
                    Err(msg) => self.err("protocol", &msg),
                },
                "prepare" => match args.split_once(' ') {
                    Some((stmt, sql)) if !sql.trim().is_empty() => {
                        match self.session.prepare(stmt, sql.trim()) {
                            Ok(()) => self.ok_empty(),
                            Err(e) => self.err(error_kind(&e), &e.to_string()),
                        }
                    }
                    _ => self.err("protocol", ".prepare takes a name and a statement"),
                },
                "exec" => match self.session.execute_prepared(args) {
                    Ok(out) => self.ok_outcome(&out),
                    Err(e) => self.err(error_kind(&e), &e.to_string()),
                },
                other => self.err("protocol", &format!("unknown command `.{other}`")),
            }
        } else {
            match self.session.execute(line) {
                Ok(out) => self.ok_outcome(&out),
                Err(e) => self.err(error_kind(&e), &e.to_string()),
            }
        }
    }

    fn cmd_set(&mut self, args: &str) -> Result<(), String> {
        let (key, value) = args
            .split_once(' ')
            .map(|(k, v)| (k, v.trim()))
            .ok_or(".set takes a key and a value")?;
        let off = value.eq_ignore_ascii_case("off") || value.eq_ignore_ascii_case("auto");
        match key {
            "engine" => {
                self.config.engine = if off {
                    None
                } else {
                    Some(parse_engine(value)?)
                }
            }
            "threads" => {
                self.config.threads = if off {
                    None
                } else {
                    Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| format!("threads takes a count, got `{value}`"))?
                            .max(1),
                    )
                }
            }
            "timeout_ms" => {
                self.config.timeout_ms = if off {
                    None
                } else {
                    Some(
                        value
                            .parse()
                            .map_err(|_| format!("timeout_ms takes milliseconds, got `{value}`"))?,
                    )
                }
            }
            "mem_limit" => {
                self.config.mem_limit = if off {
                    None
                } else {
                    Some(
                        value
                            .parse()
                            .map_err(|_| format!("mem_limit takes bytes, got `{value}`"))?,
                    )
                }
            }
            "plan_cache" => {
                self.config.plan_cache = if off {
                    None
                } else {
                    Some(matches!(value, "on" | "1" | "true"))
                }
            }
            other => {
                return Err(format!(
                    "unknown setting `{other}` (engine, threads, timeout_ms, mem_limit, plan_cache)"
                ))
            }
        }
        self.session.set_defaults(self.config.options());
        Ok(())
    }

    fn ok_empty(&mut self) -> io::Result<()> {
        self.stream.write_all(b"ok 0 0\n.\n")?;
        self.stream.flush()
    }

    fn ok_outcome(&mut self, out: &nra::QueryOutcome) -> io::Result<()> {
        let columns: Vec<String> = out
            .rows
            .schema()
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect();
        let rows: Vec<Vec<String>> = out
            .rows
            .rows()
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        self.ok_table(
            &columns.iter().map(String::as_str).collect::<Vec<_>>(),
            &rows,
        )
    }

    fn ok_table(&mut self, columns: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
        let mut out = format!("ok {} {}\n", rows.len(), columns.len());
        if !columns.is_empty() {
            let header: Vec<String> = columns.iter().map(|c| escape(c)).collect();
            out.push_str(&header.join("\t"));
            out.push('\n');
            for row in rows {
                let fields: Vec<String> = row.iter().map(|f| escape(f)).collect();
                out.push_str(&fields.join("\t"));
                out.push('\n');
            }
        }
        out.push_str(".\n");
        self.stream.write_all(out.as_bytes())?;
        self.stream.flush()
    }

    fn err(&mut self, kind: &str, message: &str) -> io::Result<()> {
        let line = format!("err {kind}: {}\n.\n", escape(message));
        self.stream.write_all(line.as_bytes())?;
        self.stream.flush()
    }
}

fn parse_engine(value: &str) -> Result<Engine, String> {
    Ok(match value.to_ascii_lowercase().as_str() {
        "nr" => Engine::NestedRelational(Strategy::Auto),
        "original" => Engine::NestedRelational(Strategy::Original),
        "optimized" => Engine::NestedRelational(Strategy::Optimized),
        "bottomup" => Engine::NestedRelational(Strategy::BottomUp),
        "pushdown" => Engine::NestedRelational(Strategy::BottomUpPushdown),
        "positive" => Engine::NestedRelational(Strategy::PositiveRewrite),
        "baseline" | "native" => Engine::Baseline,
        "oracle" | "reference" => Engine::Reference,
        other => return Err(format!("unknown engine `{other}`")),
    })
}

// ---------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------

/// A synchronous protocol client: one request, one framed response.
/// Used by the integration tests and the `bench --serve` driver; small
/// enough to reimplement from the protocol docs in any language.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let poll = poll_interval()?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // The same poll cadence the server uses: reads wake up at this
        // interval (and retry) instead of blocking indefinitely in one
        // syscall, so `NRA_SERVER_POLL_MS` tunes both sides.
        stream.set_read_timeout(Some(poll))?;
        Ok(Client {
            stream,
            pending: Vec::new(),
        })
    }

    /// Send one line (SQL or a `.command`) and parse the framed
    /// response. `Ok(Err(..))` is a server-side error (`err` frame);
    /// `Err(..)` is a transport failure.
    pub fn request(&mut self, line: &str) -> io::Result<Result<Response, String>> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;

        let status = self.read_line()?;
        if let Some(rest) = status.strip_prefix("err ") {
            // Drain the terminator.
            let term = self.read_line()?;
            debug_assert_eq!(term, ".");
            return Ok(Err(unescape(rest)));
        }
        let mut parts = status
            .strip_prefix("ok ")
            .ok_or_else(|| bad_frame(&status))?
            .split(' ');
        let nrows: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_frame(&status))?;
        let ncols: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_frame(&status))?;

        let mut columns = Vec::new();
        let mut rows = Vec::with_capacity(nrows);
        if ncols > 0 {
            columns = split_fields(&self.read_line()?);
            for _ in 0..nrows {
                rows.push(split_fields(&self.read_line()?));
            }
        }
        let term = self.read_line()?;
        if term != "." {
            return Err(bad_frame(&term));
        }
        Ok(Ok(Response { columns, rows }))
    }

    /// [`Client::request`] flattened: any failure becomes one error
    /// string (convenient in tests and the bench driver).
    pub fn query(&mut self, line: &str) -> Result<Response, String> {
        match self.request(line) {
            Ok(Ok(r)) => Ok(r),
            Ok(Err(server)) => Err(server),
            Err(io) => Err(format!("transport: {io}")),
        }
    }

    fn read_line(&mut self) -> io::Result<String> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop();
                return Ok(String::from_utf8_lossy(&line).into_owned());
            }
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ))
                }
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }
}

fn split_fields(line: &str) -> Vec<String> {
    line.split('\t').map(unescape).collect()
}

fn bad_frame(line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed response frame: {line:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips() {
        for s in ["", "plain", "tab\there", "line\nbreak", "back\\slash\r"] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }

    #[test]
    fn unknown_escapes_pass_through() {
        assert_eq!(unescape("\\x\\"), "\\x\\");
    }
}
