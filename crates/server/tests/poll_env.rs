//! `NRA_SERVER_POLL_MS` behavior, isolated in its own test binary
//! because the environment is process-global: a malformed value is a
//! structured `InvalidInput` error from both `serve` and
//! `Client::connect`, and a valid one tunes the poll without changing
//! protocol semantics.

use nra::Database;
use nra_server::{serve, Client};

#[test]
fn poll_env_is_validated_and_honored() {
    // Malformed: rejected up front, not silently defaulted.
    for bad in ["100ms", "-5", "0", ""] {
        std::env::set_var("NRA_SERVER_POLL_MS", bad);
        let err = serve(Database::new(), "127.0.0.1:0").unwrap_err();
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::InvalidInput,
            "value `{bad}`"
        );
        assert!(
            err.to_string().contains("NRA_SERVER_POLL_MS"),
            "error names the variable: {err}"
        );
    }

    // A malformed value also fails the client before any bytes move.
    std::env::set_var("NRA_SERVER_POLL_MS", "bogus");
    let err = Client::connect("127.0.0.1:1").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    // Valid: a short poll serves the full protocol and shuts down fast.
    std::env::set_var("NRA_SERVER_POLL_MS", "10");
    let db = Database::new();
    let handle = serve(db, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.query(".ping").unwrap().rows.len(), 0);
    let started = std::time::Instant::now();
    handle.shutdown();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "short poll keeps shutdown latency bounded"
    );

    // Unset: back to the 100 ms default.
    std::env::remove_var("NRA_SERVER_POLL_MS");
    let handle = serve(Database::new(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.query(".ping").unwrap().rows.len(), 0);
    handle.shutdown();
}
