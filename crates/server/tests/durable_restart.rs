//! Durable DDL under concurrent server sessions: catalog mutations made
//! while a server is live are WAL-logged, and a restart (shutdown,
//! reopen the directory, serve again) presents the identical catalog to
//! new connections.

use nra::storage::{Column, ColumnType, Value};
use nra::Database;
use nra_server::{serve, Client};

#[test]
fn ddl_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("nra-server-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First server lifetime: create + load a table while connections
    // are open, and read it over the wire from several sessions.
    let db = Database::open(&dir).unwrap();
    let handle = serve(db.clone(), "127.0.0.1:0").unwrap();
    let mut early = Client::connect(handle.addr()).unwrap();
    assert_eq!(early.query(".ping").unwrap().rows.len(), 0);

    db.create_table(
        "kv",
        vec![
            Column::not_null("k", ColumnType::Int),
            Column::new("v", ColumnType::Str),
        ],
        &["k"],
    )
    .unwrap();
    db.insert(
        "kv",
        (0..20)
            .map(|i| vec![Value::Int(i), Value::Str(format!("v{i}"))])
            .collect(),
    )
    .unwrap();

    let before: Vec<Vec<String>> = (0..3)
        .map(|_| {
            let mut c = Client::connect(handle.addr()).unwrap();
            let out = c.query("select k, v from kv where k < 5").unwrap();
            out.rows.into_iter().flatten().collect()
        })
        .collect();
    assert_eq!(before[0], before[1]);
    assert_eq!(before[1], before[2]);
    assert_eq!(before[0].len(), 10, "5 rows x 2 columns");
    handle.shutdown();
    drop(db);

    // Second lifetime: recovery replays the log; the wire-level view is
    // identical to the pre-restart one.
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.recovery().unwrap().replayed, 2, "create + insert");
    let handle = serve(db, "127.0.0.1:0").unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let after: Vec<String> = c
        .query("select k, v from kv where k < 5")
        .unwrap()
        .rows
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(after, before[0], "restart preserves query results");
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
