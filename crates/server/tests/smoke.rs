//! End-to-end protocol tests: a real listener on an ephemeral port,
//! real client sockets, concurrent connections, clean shutdown.

use nra::storage::{Column, ColumnType, Value};
use nra::Database;
use nra_server::{serve, Client};

fn seeded_db() -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        vec![
            Column::not_null("k", ColumnType::Int),
            Column::new("v", ColumnType::Int),
        ],
        &["k"],
    )
    .unwrap();
    db.insert(
        "t",
        (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
            .collect(),
    )
    .unwrap();
    db
}

#[test]
fn ping_query_and_quit() {
    let handle = serve(seeded_db(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let pong = client.query(".ping").unwrap();
    assert_eq!(pong.rows.len(), 0);

    let out = client.query("select k from t where k < 3").unwrap();
    assert_eq!(out.columns, vec!["t.k"], "projection headers are qualified");
    assert_eq!(out.rows.len(), 3);
    assert_eq!(out.rows[0], vec!["0"]);

    let bye = client.query(".quit").unwrap();
    assert_eq!(bye.rows.len(), 0);
    handle.shutdown();
}

#[test]
fn session_ids_are_distinct_per_connection() {
    let handle = serve(seeded_db(), "127.0.0.1:0").unwrap();
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    let ida = a.query(".session").unwrap().rows[0][0].clone();
    let idb = b.query(".session").unwrap().rows[0][0].clone();
    assert_ne!(ida, idb, "each connection gets its own session");
    assert_ne!(ida, "0", "server sessions are never the one-shot id");
    handle.shutdown();
}

#[test]
fn errors_are_framed_not_fatal() {
    let handle = serve(seeded_db(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client.query("select nope from nowhere").unwrap_err();
    assert!(err.starts_with("sql:"), "{err}");

    let err = client.query(".set bogus 1").unwrap_err();
    assert!(err.starts_with("protocol:"), "{err}");

    // The connection survives an error.
    let out = client.query("select k from t where k = 1").unwrap();
    assert_eq!(out.rows.len(), 1);
    handle.shutdown();
}

#[test]
fn set_prepare_exec_roundtrip() {
    let handle = serve(seeded_db(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    client.query(".set threads 1").unwrap();
    client.query(".set engine original").unwrap();
    client
        .query(".prepare low select k from t where k < 5")
        .unwrap();
    let out = client.query(".exec low").unwrap();
    assert_eq!(out.rows.len(), 5);

    let err = client.query(".exec missing").unwrap_err();
    assert!(err.contains("missing"), "{err}");

    // Prepared statements fail validation at prepare time.
    let err = client
        .query(".prepare bad select x from nowhere")
        .unwrap_err();
    assert!(err.starts_with("sql:"), "{err}");
    handle.shutdown();
}

#[test]
fn string_values_roundtrip_escaping() {
    let db = Database::new();
    db.create_table(
        "s",
        vec![
            Column::not_null("k", ColumnType::Int),
            Column::new("txt", ColumnType::Str),
        ],
        &["k"],
    )
    .unwrap();
    db.insert(
        "s",
        vec![vec![
            Value::Int(1),
            Value::Str("tab\there\nand line".into()),
        ]],
    )
    .unwrap();
    let handle = serve(db, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let out = client.query("select txt from s").unwrap();
    assert_eq!(out.rows[0][0], "'tab\there\nand line'");
    handle.shutdown();
}

#[test]
fn eight_concurrent_clients_agree() {
    let db = seeded_db();
    let expected = db
        .connect()
        .execute("select k from t where v = 3")
        .unwrap()
        .rows
        .len();
    let handle = serve(db, "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let workers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut rows = 0;
                for _ in 0..20 {
                    rows = client
                        .query("select k from t where v = 3")
                        .unwrap()
                        .rows
                        .len();
                }
                rows
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().unwrap(), expected);
    }
    handle.shutdown();
}

#[test]
fn shutdown_is_clean_and_idempotent_for_new_connects() {
    let handle = serve(seeded_db(), "127.0.0.1:0").unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.query("select k from t where k = 0").unwrap();
    handle.shutdown();
    // After shutdown the listener is gone: either the connect fails or
    // the socket is closed without a response frame.
    if let Ok(mut c) = Client::connect(addr) {
        assert!(c.query(".ping").is_err(), "server still answering");
    }
}
