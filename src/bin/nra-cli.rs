//! `nra-cli` — an interactive shell over the nested relational engine.
//!
//! ```sh
//! cargo run --release --bin nra-cli
//! ```
//!
//! Meta-commands (everything else is executed as SQL):
//!
//! ```text
//! :help                         this text
//! :tpch <scale>                 generate TPC-H-shaped data (e.g. :tpch 0.05)
//! :tbl <table> <file>           load a dbgen .tbl file into an existing table
//! :create <t> (a int, b str not null, ...) [pk(a,...)]
//! :load <table> <file.csv>      load a CSV (header row) into a table
//! :export <table> <file.csv>    dump a table to CSV
//! :tables                       list tables with row counts
//! :engine <auto|original|optimized|bottomup|pushdown|positive|baseline|oracle>
//! :threads <n|auto>             worker budget for partition-parallel execution
//! :timeout <ms|off>             cancel queries cooperatively after a deadline
//! :memlimit <bytes|off>         per-query memory budget for governed allocations
//! :explain <sql>                plan choices + the paper's tree expression
//! :analyze <sql>                EXPLAIN ANALYZE: plan + measured stats
//! :trace <sql>                  query-lifecycle trace (parse/bind/plan/execute)
//! :metrics                      process-cumulative metrics (Prometheus text)
//! :ps                           currently-running queries with live progress
//! :history [n]                  last n completed queries (whole ring by default)
//! :timing on|off                print execution time per query
//! :quit
//! ```
//!
//! The reserved `nra_sys` schema exposes the same introspection state to
//! plain SQL: `select * from nra_sys.queries` (completed ring),
//! `nra_sys.running`, `nra_sys.metrics`, `nra_sys.table_stats` and
//! `nra_sys.operators`.
//!
//! `ANALYZE <table>` (plain SQL, no colon) gathers per-column statistics
//! for the planner's cardinality estimator.
//!
//! Batch mode (non-interactive, for scripts and CI):
//!
//! ```sh
//! nra-cli [--paper | --tpch <scale>] --explain-analyze "<sql>"
//! nra-cli [--paper | --tpch <scale>] --trace ["<sql>"]
//! ```
//!
//! `--paper` loads the Section 2 running example (`R`/`S`/`T`); with it
//! the SQL argument may be omitted and defaults to the paper's Query Q.
//!
//! `--db <dir>` (interactive or batch) opens a durable database rooted
//! at `dir` — catalog mutations are write-ahead logged and survive
//! restarts; `:checkpoint` folds the log into a snapshot.

use std::io::{BufRead, BufReader, Write};
use std::time::Instant;

use nra::core::TreeExpr;
use nra::storage::csv::{read_rows, write_relation, CsvOptions};
use nra::storage::{Column, ColumnType, Schema, Table};
use nra::{Database, Engine, QueryOptions, Session, Strategy};

/// The interactive shell drives one [`Session`]: the engine/thread/
/// limit knobs below are mirrored into the session's default
/// [`QueryOptions`] whenever they change, and every SQL line executes
/// through [`Session::execute`].
struct Shell {
    session: Session,
    engine: Engine,
    threads: Option<usize>,
    timing: bool,
    timeout_ms: Option<u64>,
    mem_limit: Option<u64>,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--db <dir>` opens (or creates) a durable database; it composes
    // with both the interactive shell and batch mode.
    let mut durable: Option<Database> = None;
    if let Some(pos) = args.iter().position(|a| a == "--db") {
        if pos + 1 >= args.len() {
            eprintln!("error: --db takes a directory path");
            std::process::exit(1);
        }
        let path = args.remove(pos + 1);
        args.remove(pos);
        match Database::open(&path) {
            Ok(db) => {
                print_recovery(&path, &db);
                durable = Some(db);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if !args.is_empty() {
        if let Err(e) = run_batch(&args, durable) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let mut shell = Shell {
        session: durable.unwrap_or_default().connect(),
        engine: Engine::default(),
        threads: None,
        timing: false,
        timeout_ms: None,
        mem_limit: None,
    };
    println!("nra-cli — nested relational subquery processor (:help for commands)");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("nra> ");
        std::io::stdout().flush().ok();
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if input == ":quit" || input == ":q" {
            break;
        }
        if let Err(e) = shell.dispatch(input) {
            eprintln!("error: {e}");
        }
    }
}

/// Announce what `Database::open` recovered (tables, LSN watermarks,
/// and any degradation such as a truncated torn tail).
fn print_recovery(path: &str, db: &Database) {
    if let (Some(report), Some(info)) = (db.recovery(), db.durability()) {
        println!(
            "opened durable database at {path}: {} table(s), last lsn {}, \
             snapshot lsn {}, replayed {} record(s)",
            db.catalog().table_names().len(),
            info.last_lsn,
            info.snapshot_lsn,
            report.replayed,
        );
        for msg in &report.messages {
            println!("recovery: {msg}");
        }
    }
}

/// `nra-cli [--db <dir> | --paper | --tpch <scale>] (--explain-analyze | --trace) ["<sql>"]`
fn run_batch(args: &[String], durable: Option<Database>) -> Result<(), String> {
    let mut db: Option<Database> = durable;
    let mut mode: Option<&str> = None;
    let mut sql: Option<String> = None;
    let mut paper = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--paper" => {
                db = Some(Database::from_catalog(
                    nra::tpch::paper_example::rst_catalog(),
                ));
                paper = true;
            }
            "--tpch" => {
                i += 1;
                let scale: f64 = args
                    .get(i)
                    .ok_or("--tpch takes a scale factor")?
                    .parse()
                    .map_err(|_| "--tpch takes a numeric scale factor".to_string())?;
                db = Some(Database::from_catalog(nra::tpch::generate(
                    &nra::tpch::TpchConfig::scaled(scale),
                )));
            }
            m @ ("--explain-analyze" | "--trace") => {
                mode = Some(m);
                if let Some(next) = args.get(i + 1) {
                    if !next.starts_with("--") {
                        sql = Some(next.clone());
                        i += 1;
                    }
                }
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`; usage: nra-cli [--db <dir> | --paper | \
                     --tpch <scale>] (--explain-analyze | --trace) [\"<sql>\"]"
                ))
            }
        }
        i += 1;
    }
    let mode = mode.ok_or("batch mode needs --explain-analyze or --trace")?;
    let db = db.unwrap_or_else(|| {
        paper = true;
        Database::from_catalog(nra::tpch::paper_example::rst_catalog())
    });
    let sql = match sql {
        Some(s) => s,
        None if paper => nra::tpch::paper_example::QUERY_Q.to_string(),
        None => return Err(format!("{mode} needs a SQL argument")),
    };
    let session = db.connect();
    match mode {
        "--explain-analyze" => {
            let opts = QueryOptions::new()
                .strategy(Strategy::Original)
                .collect_profile(true)
                .simulate_io(true);
            let out = session.execute_with(&sql, &opts).map_err(err)?;
            print!("{}", out.plan.ok_or("no plan rendered for this query")?);
        }
        _ => {
            let out = session
                .execute_with(&sql, &QueryOptions::new().collect_trace(true))
                .map_err(err)?;
            print!("{}", out.trace.expect("trace collected").render_tree());
            println!("-- {} row(s)", out.rows.len());
        }
    }
    Ok(())
}

impl Shell {
    fn dispatch(&mut self, input: &str) -> Result<(), String> {
        if let Some(rest) = input.strip_prefix(':') {
            let (cmd, args) = rest.split_once(' ').unwrap_or((rest, ""));
            let args = args.trim();
            match cmd {
                "help" | "h" => {
                    println!("{}", HELP);
                    Ok(())
                }
                "tpch" => self.cmd_tpch(args),
                "tbl" => self.cmd_tbl(args),
                "create" => self.cmd_create(args),
                "load" => self.cmd_load(args),
                "export" => self.cmd_export(args),
                "tables" => {
                    let cat = self.db().catalog();
                    for name in cat.table_names() {
                        let t = cat.table(name).map_err(err)?;
                        println!("{name}: {} rows, {} columns", t.len(), t.schema().len());
                    }
                    Ok(())
                }
                "checkpoint" => {
                    let lsn = self.db().checkpoint().map_err(err)?;
                    println!("checkpoint written at lsn {lsn}");
                    Ok(())
                }
                "engine" => self.cmd_engine(args),
                "threads" => self.cmd_threads(args),
                "timeout" => self.cmd_timeout(args),
                "memlimit" => self.cmd_memlimit(args),
                "explain" => self.cmd_explain(args),
                "analyze" => {
                    let opts = self
                        .opts()
                        .strategy(Strategy::Original)
                        .collect_profile(true)
                        .simulate_io(true);
                    let out = self.session.execute_with(args, &opts).map_err(err)?;
                    print!("{}", out.plan.ok_or("no plan rendered for this query")?);
                    Ok(())
                }
                "trace" => {
                    let out = self
                        .session
                        .execute_with(args, &self.opts().collect_trace(true))
                        .map_err(err)?;
                    print!("{}", out.trace.expect("trace collected").render_tree());
                    println!("-- {} row(s)", out.rows.len());
                    Ok(())
                }
                "metrics" => {
                    let snap = nra::obs::metrics::global().snapshot();
                    if snap.is_empty() {
                        println!("(no metrics recorded yet — run some queries first)");
                    } else {
                        print!("{}", snap.render_prometheus());
                    }
                    Ok(())
                }
                "timing" => {
                    self.timing = args.eq_ignore_ascii_case("on");
                    println!("timing {}", if self.timing { "on" } else { "off" });
                    Ok(())
                }
                "ps" => {
                    let running = nra::obs::queryreg::global().running();
                    if running.is_empty() {
                        println!("(no queries running)");
                    }
                    for q in running {
                        let s = q.progress.snapshot();
                        println!(
                            "{:>4}  {:>3}%  {:>8} ms  {}/{} rows  [{}]  {}",
                            q.id,
                            s.percent,
                            s.elapsed_ms,
                            s.rows_processed,
                            s.rows_estimated,
                            s.phase,
                            q.sql
                        );
                    }
                    Ok(())
                }
                "history" => {
                    let mut completed = nra::obs::queryreg::global().completed();
                    if let Ok(n) = args.trim().parse::<usize>() {
                        let skip = completed.len().saturating_sub(n);
                        completed.drain(..skip);
                    }
                    if completed.is_empty() {
                        println!("(no completed queries yet)");
                    }
                    for r in completed {
                        println!(
                            "{:>4}  {:<18}  {:>8} ms  {:>8} rows  {} thread(s)  [{}]  {}",
                            r.id, r.outcome, r.wall_ms, r.rows, r.threads, r.strategy, r.sql
                        );
                    }
                    Ok(())
                }
                other => Err(format!("unknown command `:{other}` (try :help)")),
            }
        } else {
            self.run_sql(input)
        }
    }

    /// The shared database behind the shell's session.
    fn db(&self) -> &Database {
        self.session.database()
    }

    /// The shell's standing execution options (engine, thread budget,
    /// and resource limits) — mirrored into the session defaults by
    /// [`Shell::sync_defaults`].
    fn opts(&self) -> QueryOptions {
        let mut opts = QueryOptions::new().engine(self.engine);
        if let Some(n) = self.threads {
            opts = opts.threads(n);
        }
        if let Some(ms) = self.timeout_ms {
            opts = opts.timeout_ms(ms);
        }
        if let Some(bytes) = self.mem_limit {
            opts = opts.mem_limit_bytes(bytes);
        }
        opts
    }

    /// Push the current knob values into the session's default options
    /// so plain SQL lines (via [`Session::execute`]) pick them up.
    fn sync_defaults(&mut self) {
        let opts = self.opts();
        self.session.set_defaults(opts);
    }

    fn run_sql(&self, sql: &str) -> Result<(), String> {
        let start = Instant::now();
        let out = self.session.execute(sql).map_err(err)?;
        let elapsed = start.elapsed();
        // Catalog statements (`ANALYZE <table>`) return a summary instead
        // of rows; plain queries never set `plan` without a profile.
        match &out.plan {
            Some(plan) => print!("{plan}"),
            None => println!("{}", out.rows),
        }
        if self.timing {
            println!("({elapsed:.2?})");
        }
        Ok(())
    }

    fn cmd_tpch(&mut self, args: &str) -> Result<(), String> {
        let scale: f64 = args
            .parse()
            .map_err(|_| ":tpch takes a scale, e.g. :tpch 0.05")?;
        let cat = nra::tpch::generate(&nra::tpch::TpchConfig::scaled(scale));
        for name in cat.table_names() {
            println!("{name}: {} rows", cat.table(name).unwrap().len());
        }
        self.session = Database::from_catalog(cat).connect();
        self.sync_defaults();
        Ok(())
    }

    fn cmd_tbl(&mut self, args: &str) -> Result<(), String> {
        let (table, path) = args
            .split_once(' ')
            .ok_or(":tbl takes a table name and a file path")?;
        let file = std::fs::File::open(path.trim()).map_err(err)?;
        let schema = self
            .db()
            .catalog()
            .table(table)
            .map_err(err)?
            .schema()
            .clone();
        let rows = read_rows(BufReader::new(file), &schema, &CsvOptions::tbl()).map_err(err)?;
        let n = rows.len();
        self.db().insert(table, rows).map_err(err)?;
        println!("loaded {n} rows into {table}");
        Ok(())
    }

    /// `:create t (a int, b str not null) pk(a)`
    fn cmd_create(&mut self, args: &str) -> Result<(), String> {
        let open = args.find('(').ok_or("expected `(col type, ...)`")?;
        let name = args[..open].trim().to_string();
        // Split off a trailing pk(...) clause if present.
        let (cols_part, pk_part) = args[open + 1..]
            .split_once(')')
            .map(|(cols, rest)| (cols, rest.trim()))
            .ok_or("unbalanced parentheses")?;
        let mut columns = Vec::new();
        for spec in cols_part.split(',') {
            let mut words = spec.split_whitespace();
            let col = words.next().ok_or("empty column spec")?;
            let ty = match words.next().unwrap_or("int").to_ascii_lowercase().as_str() {
                "int" | "integer" => ColumnType::Int,
                "str" | "string" | "text" | "varchar" => ColumnType::Str,
                "decimal" | "money" => ColumnType::Decimal,
                "float" | "double" => ColumnType::Float,
                "date" => ColumnType::Date,
                "bool" | "boolean" => ColumnType::Bool,
                other => return Err(format!("unknown type `{other}`")),
            };
            let rest: Vec<String> = words.map(|w| w.to_ascii_lowercase()).collect();
            let not_null = rest.join(" ").contains("not null");
            columns.push(if not_null {
                Column::not_null(col, ty)
            } else {
                Column::new(col, ty)
            });
        }
        let mut table = Table::new(&name, Schema::new(columns));
        if let Some(pk) = pk_part
            .strip_prefix("pk(")
            .and_then(|s| s.strip_suffix(')'))
        {
            let cols: Vec<&str> = pk.split(',').map(str::trim).collect();
            table.set_primary_key(&cols).map_err(err)?;
        }
        self.db().add_table(table).map_err(err)?;
        println!("created {name}");
        Ok(())
    }

    fn cmd_load(&mut self, args: &str) -> Result<(), String> {
        let (table, path) = args
            .split_once(' ')
            .ok_or(":load takes a table name and a file path")?;
        let file = std::fs::File::open(path.trim()).map_err(err)?;
        let schema = self
            .db()
            .catalog()
            .table(table)
            .map_err(err)?
            .schema()
            .clone();
        let rows = read_rows(BufReader::new(file), &schema, &CsvOptions::default()).map_err(err)?;
        let n = rows.len();
        self.db().insert(table, rows).map_err(err)?;
        println!("loaded {n} rows into {table}");
        Ok(())
    }

    fn cmd_export(&mut self, args: &str) -> Result<(), String> {
        let (table, path) = args
            .split_once(' ')
            .ok_or(":export takes a table name and a file path")?;
        let rel = self
            .db()
            .catalog()
            .table(table)
            .map_err(err)?
            .data()
            .clone();
        let file = std::fs::File::create(path.trim()).map_err(err)?;
        write_relation(file, &rel, &CsvOptions::default()).map_err(err)?;
        println!("wrote {} rows to {}", rel.len(), path.trim());
        Ok(())
    }

    fn cmd_engine(&mut self, args: &str) -> Result<(), String> {
        self.engine = match args.to_ascii_lowercase().as_str() {
            "auto" | "nr" => Engine::NestedRelational(Strategy::Auto),
            "original" => Engine::NestedRelational(Strategy::Original),
            "optimized" => Engine::NestedRelational(Strategy::Optimized),
            "bottomup" => Engine::NestedRelational(Strategy::BottomUp),
            "pushdown" => Engine::NestedRelational(Strategy::BottomUpPushdown),
            "positive" => Engine::NestedRelational(Strategy::PositiveRewrite),
            "baseline" | "native" => Engine::Baseline,
            "oracle" | "reference" => Engine::Reference,
            other => return Err(format!("unknown engine `{other}`")),
        };
        println!("engine set to {:?}", self.engine);
        self.sync_defaults();
        Ok(())
    }

    fn cmd_threads(&mut self, args: &str) -> Result<(), String> {
        if args.eq_ignore_ascii_case("auto") || args.is_empty() {
            self.threads = None;
            println!("threads: ambient (NRA_THREADS or sequential)");
        } else {
            let n: usize = args
                .parse()
                .map_err(|_| ":threads takes a worker count or `auto`".to_string())?;
            self.threads = Some(n.max(1));
            println!("threads set to {}", n.max(1));
        }
        self.sync_defaults();
        Ok(())
    }

    fn cmd_timeout(&mut self, args: &str) -> Result<(), String> {
        if args.eq_ignore_ascii_case("off") || args.is_empty() {
            self.timeout_ms = None;
            println!("timeout off");
        } else {
            let ms: u64 = args
                .parse()
                .map_err(|_| ":timeout takes milliseconds or `off`".to_string())?;
            self.timeout_ms = Some(ms);
            println!("timeout set to {ms} ms (queries cancel cooperatively)");
        }
        self.sync_defaults();
        Ok(())
    }

    fn cmd_memlimit(&mut self, args: &str) -> Result<(), String> {
        if args.eq_ignore_ascii_case("off") || args.is_empty() {
            self.mem_limit = None;
            println!("memory limit off");
        } else {
            let bytes: u64 = args
                .parse()
                .map_err(|_| ":memlimit takes a byte count or `off`".to_string())?;
            self.mem_limit = Some(bytes);
            println!("memory limit set to {bytes} bytes per query");
        }
        self.sync_defaults();
        Ok(())
    }

    fn cmd_explain(&mut self, sql: &str) -> Result<(), String> {
        let out = self
            .session
            .execute_with(sql, &QueryOptions::new().explain_only(true))
            .map_err(err)?;
        println!("{}", out.plan.expect("explain_only sets plan"));
        let bq = self.db().prepare(sql).map_err(err)?;
        let tree = TreeExpr::build(&bq);
        println!("\ntree expression:\n{tree}");
        println!("operator pipeline:\n{}", tree.render_plan());
        Ok(())
    }
}

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

const HELP: &str = "\
:tpch <scale>                 generate TPC-H-shaped data (e.g. :tpch 0.05)
:tbl <table> <file>           load a dbgen .tbl file into an existing table
:create <t> (a int, b str not null, ...) [pk(a,...)]
:load <table> <file.csv>      load a CSV (header row) into a table
:export <table> <file.csv>    dump a table to CSV
:tables                       list tables with row counts
:checkpoint                   snapshot a durable database and truncate its WAL
:engine <auto|original|optimized|bottomup|pushdown|positive|baseline|oracle>
:threads <n|auto>             worker budget for partition-parallel execution
:timeout <ms|off>             cancel queries cooperatively after a deadline
:memlimit <bytes|off>         per-query memory budget for governed allocations
:explain <sql>                plan choices + the paper's tree expression
:analyze <sql>                EXPLAIN ANALYZE: plan + measured stats
:trace <sql>                  query-lifecycle trace (parse/bind/plan/execute)
:metrics                      process-cumulative metrics (Prometheus text)
:ps                           currently-running queries with live progress
:history [n]                  last n completed queries (the whole ring by default)
:timing on|off                print execution time per query
:quit                         exit
anything else                 executed as SQL (nra_sys.* system tables included)";
