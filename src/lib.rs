//! # nra — A Nested Relational Approach to Processing SQL Subqueries
//!
//! Top-level facade over the workspace crates, reproducing Cao & Badia's
//! SIGMOD 2005 system: a SQL front end for nested non-aggregate
//! subqueries, a flat relational engine with the commercial-style baseline
//! plans, and the paper's nested relational evaluation strategies.
//!
//! ```
//! use nra::{Database, Engine};
//! use nra::storage::{Column, ColumnType, Value};
//!
//! let mut db = Database::new();
//! db.create_table(
//!     "emp",
//!     vec![
//!         Column::not_null("id", ColumnType::Int),
//!         Column::new("salary", ColumnType::Int),
//!         Column::new("dept", ColumnType::Int),
//!     ],
//!     &["id"],
//! )
//! .unwrap();
//! db.insert("emp", vec![
//!     vec![Value::Int(1), Value::Int(90), Value::Int(1)],
//!     vec![Value::Int(2), Value::Int(70), Value::Int(1)],
//!     vec![Value::Int(3), Value::Null,   Value::Int(2)],
//! ])
//! .unwrap();
//!
//! // Employees earning more than everyone in department 2 — a `> ALL`
//! // subquery, NULL-correct out of the box.
//! let top = db
//!     .query("select id from emp where salary > all \
//!             (select salary from emp e2 where e2.dept = 2)")
//!     .unwrap();
//! assert_eq!(top.len(), 0, "NULL salary in dept 2 blocks every comparison");
//! ```

use std::fmt;

pub use nra_core as core;
pub use nra_engine as engine;
pub use nra_obs as obs;
pub use nra_sql as sql;
pub use nra_storage as storage;
pub use nra_tpch as tpch;

pub use nra_core::Strategy;
use nra_engine::EngineError;
use nra_sql::{BoundQuery, SqlError};
use nra_storage::{Catalog, Column, Relation, Schema, StorageError, Table, Tuple};

/// Which execution engine answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The paper's nested relational approach with the given strategy.
    NestedRelational(Strategy),
    /// The "System A"-style native plans (semijoin/antijoin cascades when
    /// licensed, nested iteration with index probes otherwise).
    Baseline,
    /// The brute-force tuple-iteration oracle.
    Reference,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::NestedRelational(Strategy::Auto)
    }
}

/// Unified error type of the facade.
#[derive(Debug, Clone, PartialEq)]
pub enum NraError {
    Storage(StorageError),
    Sql(SqlError),
    Engine(EngineError),
}

impl fmt::Display for NraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NraError::Storage(e) => write!(f, "{e}"),
            NraError::Sql(e) => write!(f, "{e}"),
            NraError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NraError {}

impl From<StorageError> for NraError {
    fn from(e: StorageError) -> Self {
        NraError::Storage(e)
    }
}

impl From<SqlError> for NraError {
    fn from(e: SqlError) -> Self {
        NraError::Sql(e)
    }
}

impl From<EngineError> for NraError {
    fn from(e: EngineError) -> Self {
        NraError::Engine(e)
    }
}

/// An in-memory database: a catalog plus query execution.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Wrap an existing catalog (e.g. one produced by
    /// [`tpch::generate`]).
    pub fn from_catalog(catalog: Catalog) -> Database {
        Database { catalog }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Create a table with the given columns and primary key.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: Vec<Column>,
        primary_key: &[&str],
    ) -> Result<(), NraError> {
        let mut table = Table::new(name, Schema::new(columns));
        if !primary_key.is_empty() {
            table.set_primary_key(primary_key)?;
        }
        self.catalog.add_table(table)?;
        Ok(())
    }

    /// Insert rows into a table (validating types, arity, NOT NULL).
    pub fn insert(&mut self, table: &str, rows: Vec<Tuple>) -> Result<(), NraError> {
        self.catalog.table_mut(table)?.insert_many(rows)?;
        Ok(())
    }

    /// Parse and bind a query without executing it.
    pub fn prepare(&self, sql: &str) -> Result<BoundQuery, NraError> {
        Ok(nra_sql::parse_and_bind(sql, &self.catalog)?)
    }

    /// Execute with the default engine (nested relational, auto strategy).
    pub fn query(&self, sql: &str) -> Result<Relation, NraError> {
        self.query_with(sql, Engine::default())
    }

    /// Execute with an explicit engine. Supports compound queries
    /// (`UNION`/`INTERSECT`/`EXCEPT [ALL]`) plus `ORDER BY` (ascending
    /// sorts place `NULL` first, descending last) and `LIMIT`,
    /// which are applied over the per-block results: each `SELECT` block
    /// runs through the chosen engine, the combined result goes through
    /// the set-operation algebra (`nra_engine::ops::setops`).
    pub fn query_with(&self, sql: &str, engine: Engine) -> Result<Relation, NraError> {
        let query = nra_sql::parse_query(sql)?;
        let mut rel = self.run(&nra_sql::bind(&query.first, &self.catalog)?, engine)?;
        for part in &query.compounds {
            let right = self.run(&nra_sql::bind(&part.stmt, &self.catalog)?, engine)?;
            use nra_engine::ops::setops;
            use nra_sql::SetOpKind;
            rel = match (part.op, part.all) {
                (SetOpKind::Union, false) => setops::union(&rel, &right),
                (SetOpKind::Union, true) => setops::union_all(&rel, &right),
                (SetOpKind::Intersect, false) => setops::intersect(&rel, &right),
                (SetOpKind::Intersect, true) => setops::intersect_all(&rel, &right),
                (SetOpKind::Except, false) => setops::difference(&rel, &right),
                (SetOpKind::Except, true) => setops::difference_all(&rel, &right),
            }?;
        }
        if !query.order_by.is_empty() {
            let mut keys = Vec::new();
            for (expr, desc) in &query.order_by {
                let idx = match expr {
                    // SQL-style positional reference: ORDER BY 1.
                    nra_sql::ScalarExpr::Literal(nra_storage::Value::Int(n))
                        if *n >= 1 && (*n as usize) <= rel.schema().len() =>
                    {
                        *n as usize - 1
                    }
                    nra_sql::ScalarExpr::Column { qualifier, name } => {
                        let full = match qualifier {
                            Some(q) => format!("{q}.{name}"),
                            None => name.clone(),
                        };
                        rel.schema().resolve(&full).map_err(NraError::Storage)?
                    }
                    other => {
                        return Err(NraError::Sql(SqlError::bind(format!(
                            "ORDER BY supports output columns and positions, not `{other}`"
                        ))))
                    }
                };
                keys.push((idx, *desc));
            }
            rel.rows_mut().sort_by(|a, b| {
                for &(idx, desc) in &keys {
                    let ord = a[idx].total_cmp(&b[idx]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = query.limit {
            rel.rows_mut().truncate(n);
        }
        Ok(rel)
    }

    /// Execute a prepared query.
    pub fn run(&self, query: &BoundQuery, engine: Engine) -> Result<Relation, NraError> {
        Ok(match engine {
            Engine::NestedRelational(strategy) => {
                nra_core::execute(query, &self.catalog, strategy)?
            }
            Engine::Baseline => nra_engine::baseline::execute(query, &self.catalog)?,
            Engine::Reference => nra_engine::reference::evaluate(query, &self.catalog)?,
        })
    }

    /// A one-line description of the plan each engine would use. For a
    /// compound query, explains the first `SELECT` block and notes the
    /// set operations applied on top.
    pub fn explain(&self, sql: &str) -> Result<String, NraError> {
        let parsed = nra_sql::parse_query(sql)?;
        let suffix = if parsed.compounds.is_empty() {
            String::new()
        } else {
            format!(
                "; then {} set operation(s) over the per-block results",
                parsed.compounds.len()
            )
        };
        let bound = nra_sql::bind(&parsed.first, &self.catalog)?;
        let nr = match nra_core::auto_strategy(&bound) {
            Strategy::PositiveRewrite => "positive rewrite (semijoin cascade)",
            Strategy::BottomUpPushdown => "bottom-up with nest push-down",
            Strategy::BottomUp => "bottom-up",
            Strategy::Optimized => "single-sort pipelined cascade",
            Strategy::Original => "Algorithm 1 (two-pass)",
            Strategy::Auto => unreachable!("auto resolves to a concrete strategy"),
        };
        let baseline = nra_engine::baseline::describe(&bound, &self.catalog);
        Ok(format!(
            "nested relational: {nr}; baseline (System A): {baseline}{suffix}"
        ))
    }

    /// `EXPLAIN ANALYZE`: execute the query under the observability
    /// collector ([`obs`]) and render the Algorithm 1 plan with each
    /// operator node annotated by its measured statistics — rows in/out,
    /// wall time, hash-table build sizes, nest group counts, linking
    /// three-valued outcomes, and NULL-padded tuples — followed by a
    /// footer with the result cardinality, total operator time, and the
    /// simulated I/O page counts.
    ///
    /// The query runs with [`Strategy::Original`] (the two-pass
    /// Algorithm 1) so the executed operator pipeline matches the
    /// rendered plan node for node; other strategies fuse or reorder
    /// operators away from the textbook tree. Any profile being
    /// collected on this thread is replaced, and the collector is left
    /// disabled on return. The I/O simulator is enabled for the duration
    /// unless the caller already turned it on.
    pub fn explain_analyze(&self, sql: &str) -> Result<String, NraError> {
        use nra_storage::iosim;
        let bound = self.prepare(sql)?;
        nra_obs::enable();
        let own_io = !iosim::is_enabled();
        if own_io {
            iosim::enable(iosim::IoConfig::default());
        }
        let result = self.run(&bound, Engine::NestedRelational(Strategy::Original));
        let profile = nra_obs::disable().expect("collector enabled above");
        if own_io {
            iosim::disable();
        }
        let rel = result?;
        let tree = nra_core::TreeExpr::build(&bound);
        let mut out = tree.render_plan_analyzed(&profile);
        out.push_str(&format!(
            "-- {} row(s); total operator time {:.3} ms\n",
            rel.len(),
            profile.total_wall_ns() as f64 / 1e6
        ));
        if let Some(io) = &profile.io {
            out.push_str(&format!(
                "-- io: {} sequential page(s), {} random hit(s), {} random miss(es)\n",
                io.seq_pages, io.rand_hits, io.rand_misses
            ));
        }
        Ok(out)
    }

    /// Execute `sql` with query-lifecycle tracing ([`obs::trace`]) and
    /// return both the result and the captured trace: a hierarchical
    /// record of the parse, bind, plan and execute phases with their wall
    /// times, the `Bound` summary (block count, linking operators), one
    /// `StrategyChosen` event per query block explaining why the planner
    /// picked its strategy there (plus the rejected alternatives),
    /// `RewriteStep` events for the §4.2 transformations applied, and one
    /// `Op` event per executed operator using the same qualified names as
    /// [`obs::Profile`] so traces and profiles correlate.
    ///
    /// Runs with the default engine (nested relational, auto strategy).
    /// Events are captured in an in-memory ring buffer (up to 4096
    /// entries); the environment sinks also apply, so `NRA_TRACE=1`
    /// mirrors the trace to stderr and `NRA_TRACE_FILE=path` appends it
    /// as JSONL. Any tracer already installed on this thread is replaced,
    /// and tracing is left disabled on return.
    pub fn trace_query(&self, sql: &str) -> Result<(Relation, obs::trace::Trace), NraError> {
        use nra_obs::trace::{self, TraceEvent};
        let (ring, handle) = trace::RingSink::with_capacity(4096);
        let mut sinks: Vec<Box<dyn trace::TraceSink>> = vec![Box::new(ring)];
        sinks.extend(trace::env_sinks());
        trace::start(sinks);
        let started = std::time::Instant::now();
        trace::emit(|| TraceEvent::QueryStart {
            sql: sql.to_string(),
        });
        let result = (|| -> Result<Relation, NraError> {
            let bound = self.prepare(sql)?;
            let mut exec = trace::phase(|| "execute".to_string());
            let rel = self.run(&bound, Engine::default())?;
            exec.set_rows(rel.len() as u64);
            Ok(rel)
        })();
        if let Ok(rel) = &result {
            let rows = rel.len() as u64;
            trace::emit(|| TraceEvent::QueryEnd {
                rows,
                wall_ns: started.elapsed().as_nanos() as u64,
            });
        }
        trace::stop();
        Ok((result?, handle.take()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::{ColumnType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "x",
            vec![
                Column::not_null("k", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
            &["k"],
        )
        .unwrap();
        db.insert(
            "x",
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Null],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let db = db();
        let out = db.query("select k from x where v is not null").unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn engines_agree() {
        let db = db();
        let sql = "select k from x where v not in (select v from x x2 where x2.k <> x.k)";
        let nr = db.query_with(sql, Engine::default()).unwrap();
        let base = db.query_with(sql, Engine::Baseline).unwrap();
        let oracle = db.query_with(sql, Engine::Reference).unwrap();
        assert!(nr.multiset_eq(&oracle));
        assert!(base.multiset_eq(&oracle));
    }

    #[test]
    fn explain_mentions_both_engines() {
        let db = db();
        let s = db
            .explain("select k from x where v in (select v from x x2)")
            .unwrap();
        assert!(s.contains("nested relational"));
        assert!(s.contains("System A"));
    }

    #[test]
    fn errors_are_surfaced() {
        let mut db = db();
        assert!(db.query("select nope from x").is_err());
        assert!(db.query("not sql at all").is_err());
        assert!(db
            .insert("x", vec![vec![Value::Null, Value::Null]])
            .is_err());
        assert!(db.create_table("x", vec![], &[]).is_err());
    }
}
