//! # nra — A Nested Relational Approach to Processing SQL Subqueries
//!
//! Top-level facade over the workspace crates, reproducing Cao & Badia's
//! SIGMOD 2005 system: a SQL front end for nested non-aggregate
//! subqueries, a flat relational engine with the commercial-style baseline
//! plans, and the paper's nested relational evaluation strategies.
//!
//! Queries go through one entry point, [`Database::execute`], driven by a
//! [`QueryOptions`] builder and returning a [`QueryOutcome`]:
//!
//! ```
//! use nra::{Database, QueryOptions};
//! use nra::storage::{Column, ColumnType, Value};
//!
//! let db = Database::new();
//! db.create_table(
//!     "emp",
//!     vec![
//!         Column::not_null("id", ColumnType::Int),
//!         Column::new("salary", ColumnType::Int),
//!         Column::new("dept", ColumnType::Int),
//!     ],
//!     &["id"],
//! )
//! .unwrap();
//! db.insert("emp", vec![
//!     vec![Value::Int(1), Value::Int(90), Value::Int(1)],
//!     vec![Value::Int(2), Value::Int(70), Value::Int(1)],
//!     vec![Value::Int(3), Value::Null,   Value::Int(2)],
//! ])
//! .unwrap();
//!
//! // Employees earning more than everyone in department 2 — a `> ALL`
//! // subquery, NULL-correct out of the box.
//! let top = db
//!     .execute("select id from emp where salary > all \
//!               (select salary from emp e2 where e2.dept = 2)",
//!              &QueryOptions::new())
//!     .unwrap();
//! assert_eq!(top.rows.len(), 0, "NULL salary in dept 2 blocks every comparison");
//! ```
//!
//! The same call collects plans, operator profiles, lifecycle traces, and
//! controls the partition-parallel executor:
//!
//! ```
//! # use nra::{Database, QueryOptions};
//! # let db = Database::new();
//! # let _ = &db;
//! let opts = QueryOptions::new()
//!     .threads(4)             // worker budget for the morsel scheduler
//!     .collect_profile(true); // per-operator stats in `outcome.profile`
//! # let _ = opts;
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

mod durable;
mod plancache;
mod session;
mod sys;

pub use durable::{DurabilityInfo, RecoveryReport};
pub use session::Session;

pub use nra_core as core;
pub use nra_engine as engine;
pub use nra_obs as obs;
pub use nra_sql as sql;
pub use nra_storage as storage;
pub use nra_tpch as tpch;

pub use nra_core::Strategy;
pub use nra_engine::{AdmissionConfig, AdmissionController, CancelToken, FaultKind};
use nra_engine::{EngineError, FaultPlan, Governor};
use nra_sql::{BoundQuery, SqlError};
use nra_storage::{Catalog, Column, Relation, Schema, StorageError, Table, Tuple};

/// Which execution engine answers a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The paper's nested relational approach with the given strategy.
    NestedRelational(Strategy),
    /// The "System A"-style native plans (semijoin/antijoin cascades when
    /// licensed, nested iteration with index probes otherwise).
    Baseline,
    /// The brute-force tuple-iteration oracle.
    Reference,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::NestedRelational(Strategy::Auto)
    }
}

/// Unified error type of the facade.
#[derive(Debug, Clone, PartialEq)]
pub enum NraError {
    Storage(StorageError),
    Sql(SqlError),
    Engine(EngineError),
}

impl fmt::Display for NraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NraError::Storage(e) => write!(f, "{e}"),
            NraError::Sql(e) => write!(f, "{e}"),
            NraError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NraError::Storage(e) => Some(e),
            NraError::Sql(e) => Some(e),
            NraError::Engine(e) => Some(e),
        }
    }
}

impl From<StorageError> for NraError {
    fn from(e: StorageError) -> Self {
        NraError::Storage(e)
    }
}

impl From<SqlError> for NraError {
    fn from(e: SqlError) -> Self {
        NraError::Sql(e)
    }
}

impl From<EngineError> for NraError {
    fn from(e: EngineError) -> Self {
        NraError::Engine(e)
    }
}

/// Per-call knobs for [`Database::execute`], built fluently:
///
/// ```
/// use nra::{Engine, QueryOptions, Strategy};
/// let opts = QueryOptions::new()
///     .engine(Engine::NestedRelational(Strategy::Optimized))
///     .threads(4)
///     .collect_profile(true);
/// # let _ = opts;
/// ```
///
/// Everything defaults off: nested relational engine with the auto
/// strategy, ambient thread budget (the `NRA_THREADS` environment
/// variable, else sequential), no profile, no trace, no plan text.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    engine: Engine,
    threads: Option<usize>,
    collect_profile: bool,
    collect_metrics: bool,
    collect_trace: bool,
    explain_only: bool,
    simulate_io: bool,
    mem_limit_bytes: Option<u64>,
    timeout_ms: Option<u64>,
    cancel: Option<CancelToken>,
    faults: Vec<(String, u64, FaultKind)>,
    slow_ms: Option<u64>,
    slow_log: Option<std::path::PathBuf>,
    plan_cache: Option<bool>,
    /// Set on the nested call that answers an `nra_sys.*` query: the
    /// introspection query itself stays out of the query registry, the
    /// progress tracker, the slow-query log and the plan cache (no
    /// self-recursion, no pollution from transient overlay databases).
    pub(crate) introspection: bool,
    /// Session the call runs under, stamped by [`Session`] (0 = a
    /// one-shot call outside any session).
    pub(crate) session: u64,
}

impl QueryOptions {
    pub fn new() -> QueryOptions {
        QueryOptions::default()
    }

    /// Execute with an explicit engine (default: nested relational with
    /// [`Strategy::Auto`]).
    pub fn engine(mut self, engine: Engine) -> QueryOptions {
        self.engine = engine;
        self
    }

    /// Shorthand for the nested relational engine with a forced strategy.
    pub fn strategy(self, strategy: Strategy) -> QueryOptions {
        self.engine(Engine::NestedRelational(strategy))
    }

    /// Worker-thread budget for the partition-parallel executor
    /// ([`engine::exec`]). Overrides the `NRA_THREADS` environment
    /// variable for this call only; `1` forces sequential execution.
    /// Results are identical at any thread count.
    pub fn threads(mut self, n: usize) -> QueryOptions {
        self.threads = Some(n);
        self
    }

    /// Collect per-operator statistics; [`QueryOutcome::profile`] is then
    /// `Some`. With the [`Strategy::Original`] nested relational engine
    /// this also renders the analyzed plan into [`QueryOutcome::plan`]
    /// (the `EXPLAIN ANALYZE` text).
    pub fn collect_profile(mut self, on: bool) -> QueryOptions {
        self.collect_profile = on;
        self
    }

    /// Collect per-query metrics into a dedicated registry scope;
    /// [`QueryOutcome::metrics`] is then a [`obs::metrics::Snapshot`] of
    /// everything the call recorded (operator counters, rows produced,
    /// outcome, Q-error histogram). The per-query scope deliberately
    /// excludes wall-clock times and partition counts, so the snapshot is
    /// byte-identical at any thread count. The same scope is also
    /// populated (and appended as JSONL) when the `NRA_METRICS=path`
    /// environment variable is set, independent of this option.
    pub fn collect_metrics(mut self, on: bool) -> QueryOptions {
        self.collect_metrics = on;
        self
    }

    /// Capture the query-lifecycle trace (parse/bind/plan/execute phases,
    /// planner decisions, rewrites, operator events);
    /// [`QueryOutcome::trace`] is then `Some`.
    pub fn collect_trace(mut self, on: bool) -> QueryOptions {
        self.collect_trace = on;
        self
    }

    /// Don't execute: return only the one-line plan description in
    /// [`QueryOutcome::plan`] (the classic `EXPLAIN`).
    pub fn explain_only(mut self, on: bool) -> QueryOptions {
        self.explain_only = on;
        self
    }

    /// Run the I/O simulator for the duration of the call (unless the
    /// caller already enabled it), so profiles carry page counts.
    pub fn simulate_io(mut self, on: bool) -> QueryOptions {
        self.simulate_io = on;
        self
    }

    /// Memory budget for this call, in bytes. Governed allocations (hash
    /// join builds, nest group buffers, sort scratch, materialized
    /// intermediates) are charged against it; exceeding the budget fails
    /// the query with [`engine::EngineError::ResourceExhausted`] instead
    /// of exhausting the process. Overrides the `NRA_MEM_LIMIT`
    /// environment variable for this call.
    pub fn mem_limit_bytes(mut self, bytes: u64) -> QueryOptions {
        self.mem_limit_bytes = Some(bytes);
        self
    }

    /// Cancel the query after `ms` milliseconds (cooperatively — it stops
    /// at the next operator checkpoint, failing with
    /// [`engine::EngineError::Cancelled`]). `0` cancels at the first
    /// checkpoint.
    pub fn timeout_ms(mut self, ms: u64) -> QueryOptions {
        self.timeout_ms = Some(ms);
        self
    }

    /// Attach a cancellation handle: calling [`CancelToken::cancel`] from
    /// any thread stops the query at its next checkpoint.
    pub fn cancel(mut self, token: CancelToken) -> QueryOptions {
        self.cancel = Some(token);
        self
    }

    /// Arm a deterministic fault at a named execution site (see
    /// [`engine::faultinject`]) — the test-harness API behind the
    /// `NRA_FAULT` environment variable.
    pub fn fault(mut self, site: impl Into<String>, nth: u64, kind: FaultKind) -> QueryOptions {
        self.faults.push((site.into(), nth, kind));
        self
    }

    /// Slow-query threshold in milliseconds: a query whose wall time
    /// reaches it is counted in `nra_slow_queries_total` and — when a
    /// log path is configured via [`QueryOptions::slow_log`] or the
    /// `NRA_SLOW_LOG` environment variable — appended to the JSONL
    /// slow-query log (see [`obs::slowlog`]). `0` logs every query.
    /// Falls back to the `NRA_SLOW_MS` environment variable when unset.
    pub fn slow_ms(mut self, ms: u64) -> QueryOptions {
        self.slow_ms = Some(ms);
        self
    }

    /// Slow-query log destination for this call, overriding the
    /// `NRA_SLOW_LOG` environment variable. Records are appended as
    /// schema-validated JSONL ([`obs::slowlog::validate_lines`]).
    pub fn slow_log(mut self, path: impl Into<std::path::PathBuf>) -> QueryOptions {
        self.slow_log = Some(path.into());
        self
    }

    /// Opt this call in or out of the process-wide plan cache (bound
    /// plans keyed on normalized SQL; see `DESIGN.md` §15). Unset, the
    /// `NRA_PLAN_CACHE` environment variable decides (`0`/`off`/`false`
    /// disables), and the default is **on** — repeats of a statement
    /// skip the parser and binder until a catalog write invalidates
    /// them. Results are identical either way; only plan reuse changes.
    pub fn plan_cache(mut self, on: bool) -> QueryOptions {
        self.plan_cache = Some(on);
        self
    }

    /// Cache policy resolution: explicit option > `NRA_PLAN_CACHE` >
    /// on. Introspection calls never use the cache (their overlay
    /// databases are transient).
    fn plan_cache_enabled(&self) -> bool {
        if self.introspection {
            return false;
        }
        match self.plan_cache {
            Some(on) => on,
            None => !matches!(
                std::env::var("NRA_PLAN_CACHE").as_deref().map(str::trim),
                Ok("0") | Ok("off") | Ok("false")
            ),
        }
    }

    /// The [`Governor`] these options describe (environment overlays
    /// included); `None` when nothing is armed.
    fn governor(&self) -> Option<Governor> {
        let mut gov = Governor::new();
        if let Some(bytes) = self.mem_limit_bytes {
            gov = gov.mem_limit(bytes);
        }
        if let Some(ms) = self.timeout_ms {
            gov = gov.timeout_ms(ms);
        }
        if let Some(token) = &self.cancel {
            gov = gov.cancel_token(token.clone());
        }
        if !self.faults.is_empty() {
            let mut plan = FaultPlan::default();
            for (site, nth, kind) in &self.faults {
                plan.push(site.clone(), *nth, *kind);
            }
            gov = gov.faults(plan);
        }
        let gov = gov.with_env();
        gov.is_armed().then_some(gov)
    }
}

/// Everything a [`Database::execute`] call produced.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result relation (empty with an empty schema under
    /// [`QueryOptions::explain_only`]).
    pub rows: Relation,
    /// Plan text: the one-line engine description under `explain_only`,
    /// or the operator-annotated `EXPLAIN ANALYZE` tree when a profile
    /// was collected with the Algorithm 1 strategy.
    pub plan: Option<String>,
    /// Per-operator statistics, when requested.
    pub profile: Option<obs::Profile>,
    /// Snapshot of the per-query metrics scope, when requested via
    /// [`QueryOptions::collect_metrics`] (or the `NRA_METRICS`
    /// environment variable). Thread-count-invariant by construction.
    pub metrics: Option<obs::metrics::Snapshot>,
    /// The captured lifecycle trace, when requested.
    pub trace: Option<obs::trace::Trace>,
    /// The worker-thread budget the call ran with (1 = sequential).
    pub threads: usize,
    /// The final progress snapshot (100% on success). `None` for
    /// `explain_only`, `ANALYZE` and introspection (`nra_sys.*`) calls,
    /// which skip progress tracking.
    pub progress: Option<obs::progress::ProgressSnapshot>,
}

/// Process-unique database ids, used as the first component of every
/// plan-cache key: two databases must never share cached plans even for
/// byte-identical SQL, because bound plans embed catalog-specific name
/// resolutions.
fn next_db_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// State shared by every handle to one database: the catalog behind a
/// readers-writer lock, the schema version driving plan-cache
/// invalidation, the admission controller gating concurrent queries,
/// and the session-id counter.
struct DbShared {
    id: u64,
    catalog: RwLock<Catalog>,
    /// Bumped on every catalog write (DDL, insert, `ANALYZE`, or a
    /// [`Database::catalog_mut`] guard dropping). A cached plan is
    /// served only while its recorded version still matches. Durable
    /// databases restore it to the last applied LSN on open, so plans
    /// cached before a crash can never match a recovered catalog.
    version: AtomicU64,
    admission: Mutex<Arc<AdmissionController>>,
    next_session: AtomicU64,
    /// WAL + snapshot state for databases opened via [`Database::open`]
    /// (`None` for in-memory databases). Lock order: the catalog lock
    /// is always taken before this mutex.
    durable: Option<Mutex<durable::Durability>>,
}

impl DbShared {
    /// Record a catalog write: bump the schema version and purge this
    /// database's plan-cache entries.
    fn invalidate_plans(&self) {
        self.version.fetch_add(1, Ordering::SeqCst);
        plancache::purge_db(self.id);
    }
}

impl Drop for DbShared {
    fn drop(&mut self) {
        // Last handle gone: release the plan-cache slots (quietly — the
        // schema didn't change, the database did).
        plancache::forget_db(self.id);
    }
}

/// Shared-read access to a database's catalog (see
/// [`Database::catalog`]). Dereferences to [`Catalog`]; released on
/// drop.
pub struct CatalogRef<'a> {
    guard: RwLockReadGuard<'a, Catalog>,
}

impl std::ops::Deref for CatalogRef<'_> {
    type Target = Catalog;

    fn deref(&self) -> &Catalog {
        &self.guard
    }
}

/// Exclusive access to a database's catalog (see
/// [`Database::catalog_mut`]). Dropping the guard bumps the schema
/// version and invalidates the database's plan-cache entries, so direct
/// catalog surgery follows the same discipline as
/// [`Database::create_table`] / [`Database::insert`].
pub struct CatalogMut<'a> {
    guard: Option<RwLockWriteGuard<'a, Catalog>>,
    shared: &'a DbShared,
}

impl std::ops::Deref for CatalogMut<'_> {
    type Target = Catalog;

    fn deref(&self) -> &Catalog {
        self.guard.as_deref().expect("guard present until drop")
    }
}

impl std::ops::DerefMut for CatalogMut<'_> {
    fn deref_mut(&mut self) -> &mut Catalog {
        self.guard.as_deref_mut().expect("guard present until drop")
    }
}

impl Drop for CatalogMut<'_> {
    fn drop(&mut self) {
        // Bump the version before releasing the write lock: a reader
        // admitted right after the release already sees the new version
        // and can never revive a stale cached plan.
        self.shared.version.fetch_add(1, Ordering::SeqCst);
        drop(self.guard.take());
        plancache::purge_db(self.shared.id);
    }
}

/// An in-memory database: a catalog plus query execution.
///
/// A `Database` value is a cheap handle onto shared state — cloning it
/// (or sending a clone to another thread) yields another view of the
/// *same* catalog, plan-cache lineage and session counter. Read queries
/// on different handles run concurrently under a shared catalog lock;
/// catalog writes ([`create_table`](Database::create_table),
/// [`insert`](Database::insert), `ANALYZE`,
/// [`catalog_mut`](Database::catalog_mut)) take the lock exclusively
/// and wait for in-flight queries to drain.
///
/// Multi-statement clients should open a [`Session`] via
/// [`Database::connect`]; [`Database::execute`] is the equivalent
/// one-shot path.
#[derive(Clone)]
pub struct Database {
    shared: Arc<DbShared>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("id", &self.shared.id)
            .field("version", &self.shared.version.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Database {
    pub fn new() -> Database {
        Database::from_catalog(Catalog::new())
    }

    /// Wrap an existing catalog (e.g. one produced by
    /// [`tpch::generate`]).
    pub fn from_catalog(catalog: Catalog) -> Database {
        Database::assemble(catalog, 0, None)
    }

    /// Common constructor behind [`Database::from_catalog`] and
    /// [`Database::open`]: durable opens restore the schema version to
    /// the last applied LSN.
    pub(crate) fn assemble(
        catalog: Catalog,
        version: u64,
        durable: Option<Mutex<durable::Durability>>,
    ) -> Database {
        Database {
            shared: Arc::new(DbShared {
                id: next_db_id(),
                catalog: RwLock::new(catalog),
                version: AtomicU64::new(version),
                admission: Mutex::new(Arc::new(AdmissionController::new(
                    AdmissionConfig::default().with_env(),
                ))),
                next_session: AtomicU64::new(1),
                durable,
            }),
        }
    }

    /// The database's process-unique id (plan-cache key component).
    pub(crate) fn id(&self) -> u64 {
        self.shared.id
    }

    /// Next session id, for [`Database::connect`].
    pub(crate) fn next_session_id(&self) -> u64 {
        self.shared.next_session.fetch_add(1, Ordering::Relaxed)
    }

    /// Shared-read view of the catalog. Any number of guards can be
    /// live at once (queries read under the same lock); don't hold one
    /// across a catalog write on the same database, which needs the
    /// lock exclusively.
    pub fn catalog(&self) -> CatalogRef<'_> {
        CatalogRef {
            guard: self
                .shared
                .catalog
                .read()
                .unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Exclusive catalog access, waiting for in-flight queries to
    /// drain. Dropping the returned guard bumps the schema version and
    /// invalidates this database's cached plans.
    pub fn catalog_mut(&self) -> CatalogMut<'_> {
        CatalogMut {
            guard: Some(
                self.shared
                    .catalog
                    .write()
                    .unwrap_or_else(|e| e.into_inner()),
            ),
            shared: &self.shared,
        }
    }

    /// Replace the admission controller gating this database's queries
    /// (concurrency cap, aggregate memory reservations, queue timeout).
    /// In-flight permits stay with the controller that issued them; new
    /// queries see `config`. The default controller comes from the
    /// `NRA_MAX_CONCURRENT` / `NRA_ADMISSION_MEM` /
    /// `NRA_ADMISSION_TIMEOUT_MS` environment (unlimited when unset).
    pub fn set_admission(&self, config: AdmissionConfig) {
        let controller = Arc::new(AdmissionController::new(config));
        *self
            .shared
            .admission
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = controller;
    }

    /// The admission controller currently gating this database.
    pub fn admission(&self) -> Arc<AdmissionController> {
        self.shared
            .admission
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Create a table with the given columns and primary key.
    pub fn create_table(
        &self,
        name: &str,
        columns: Vec<Column>,
        primary_key: &[&str],
    ) -> Result<(), NraError> {
        let mut table = Table::new(name, Schema::new(columns));
        if !primary_key.is_empty() {
            table.set_primary_key(primary_key)?;
        }
        self.add_table(table)
    }

    /// Register a fully-built [`Table`] (schema, primary key, and any
    /// pre-loaded rows and statistics). On a durable database the whole
    /// table is logged as one atomic `CreateTable` record before it
    /// becomes visible.
    pub fn add_table(&self, table: Table) -> Result<(), NraError> {
        let name = table.name();
        if name == "nra_sys" || name.starts_with(sys::PREFIX) {
            return Err(NraError::Sql(SqlError::bind(format!(
                "`nra_sys` is a reserved schema; cannot create table `{name}`"
            ))));
        }
        let mut guard = self.catalog_mut();
        if guard.contains(table.name()) {
            return Err(NraError::Storage(StorageError::DuplicateTable(
                table.name().to_string(),
            )));
        }
        // Write-ahead: the record is durable before the table exists.
        if self.is_durable() {
            self.durable_log(&storage::wal::WalRecord::CreateTable(table.clone()))?;
        }
        guard.add_table(table)?;
        drop(guard);
        self.after_durable_mutation();
        Ok(())
    }

    /// Insert rows into a table (validating types, arity, NOT NULL).
    pub fn insert(&self, table: &str, rows: Vec<Tuple>) -> Result<(), NraError> {
        let mut guard = self.catalog_mut();
        let t = guard.table_mut(table)?;
        if self.is_durable() {
            // Pre-validate every row so the logged record is exactly
            // what the in-memory apply will accept: an acknowledged
            // insert is all-or-nothing on disk and in memory.
            for row in &rows {
                t.data().validate(row)?;
            }
            self.durable_log(&storage::wal::WalRecord::Insert {
                table: table.to_string(),
                rows: rows.clone(),
            })?;
        }
        t.insert_many(rows)?;
        drop(guard);
        self.after_durable_mutation();
        Ok(())
    }

    /// Parse and bind a query without executing it.
    pub fn prepare(&self, sql: &str) -> Result<BoundQuery, NraError> {
        Ok(nra_sql::parse_and_bind(sql, &self.catalog())?)
    }

    /// The single query entry point: parse, plan and run `sql` under
    /// `options`, returning rows plus whatever artifacts were requested.
    ///
    /// Supports compound queries (`UNION`/`INTERSECT`/`EXCEPT [ALL]`)
    /// plus `ORDER BY` (ascending sorts place `NULL` first, descending
    /// last) and `LIMIT`: each `SELECT` block runs through the chosen
    /// engine, the combined result goes through the set-operation algebra
    /// (`nra_engine::ops::setops`).
    ///
    /// Parallelism: the call runs under the thread budget from
    /// [`QueryOptions::threads`] (falling back to the `NRA_THREADS`
    /// environment variable, else sequential). The partition-parallel
    /// executor is deterministic — rows, their order, and every profile
    /// counter except wall times and partition counts are identical at
    /// any thread count.
    ///
    /// Observability side effects match the old dedicated methods: a
    /// profile collector or tracer already installed on this thread is
    /// replaced when the corresponding option is set, and both are left
    /// disabled on return. Under [`QueryOptions::collect_trace`] the
    /// environment sinks also apply (`NRA_TRACE=1` mirrors to stderr,
    /// `NRA_TRACE_FILE=path` appends JSONL).
    ///
    /// This is the one-shot path: it is a thin wrapper over a transient
    /// [`Session`] (id 0). Multi-statement clients should hold a real
    /// session from [`Database::connect`] instead — same machinery,
    /// plus per-session defaults and prepared statements.
    pub fn execute(&self, sql: &str, options: &QueryOptions) -> Result<QueryOutcome, NraError> {
        Session::one_shot(self).execute_with(sql, options)
    }

    /// The real entry point behind [`Database::execute`] and
    /// [`Session::execute_with`]; `options.session` is already stamped.
    pub(crate) fn execute_inner(
        &self,
        sql: &str,
        options: &QueryOptions,
    ) -> Result<QueryOutcome, NraError> {
        // Strict configuration gate: a malformed NRA_FAULT /
        // NRA_MEM_LIMIT / NRA_BATCH_ROWS is an error up front, not a
        // setting that silently arms nothing.
        engine::config::validate_env().map_err(NraError::Engine)?;
        let _budget = options
            .threads
            .map(|n| nra_engine::exec::set_threads(Some(n)));
        let threads = nra_engine::exec::threads();

        // `ANALYZE <table>` is a catalog statement, not a query: gather
        // column statistics (NDV, null counts) for the planner's
        // cardinality estimator and return the summary as plan text.
        if let Some(table) = nra_sql::parse_analyze(sql)? {
            return self.run_analyze(&table, threads);
        }

        // A query touching the reserved `nra_sys` schema is answered by
        // re-running it against an overlay catalog of materialized
        // system-table snapshots — through this same entry point, with
        // the introspection flag set so it never registers itself.
        if !options.introspection && sys::mentions_sys(sql) {
            if let Some(result) = sys::dispatch(self, sql, options) {
                return result;
            }
        }

        if options.explain_only {
            return Ok(QueryOutcome {
                rows: Relation::new(Schema::new(Vec::new())),
                plan: Some(self.explain_text(&self.catalog(), sql)?),
                profile: None,
                metrics: None,
                trace: None,
                threads,
                progress: None,
            });
        }

        // Admission: the gate sits before any per-query state exists —
        // a refused query never registers, traces or profiles, it just
        // returns `EngineError::Admission`. The permit is RAII-held for
        // the rest of the call, releasing its concurrency slot and
        // memory reservation on every exit path. Metadata paths above
        // (EXPLAIN, ANALYZE, introspection) bypass the gate: inspecting
        // a saturated database must itself never queue.
        let mem_reserve = options.mem_limit_bytes.or_else(env_mem_limit).unwrap_or(0);
        let _permit = self
            .admission()
            .admit(mem_reserve)
            .map_err(NraError::Engine)?;

        // One shared-read catalog guard for the whole query: every
        // planning and execution step below sees the same catalog
        // snapshot, concurrent readers on other handles proceed in
        // parallel, and catalog writers wait for the drain.
        let cat_guard = self.catalog();
        let cat: &Catalog = &cat_guard;

        use nra_obs::metrics;
        use nra_obs::trace::{self, TraceEvent};

        // Per-query metrics scope: a fresh registry installed on this
        // thread (and handed to every worker through the observability
        // handoff). The process-cumulative registry keeps accumulating
        // regardless.
        let metrics_env = std::env::var("NRA_METRICS").ok().filter(|p| !p.is_empty());
        let query_metrics = (options.collect_metrics || metrics_env.is_some())
            .then(|| std::sync::Arc::new(metrics::Registry::new()));
        let _metrics_guard = metrics::install_query(query_metrics.clone());

        let trace_handle = if options.collect_trace {
            let (ring, handle) = trace::RingSink::with_capacity(4096);
            let mut sinks: Vec<Box<dyn trace::TraceSink>> = vec![Box::new(ring)];
            sinks.extend(trace::env_sinks());
            trace::start(sinks);
            trace::emit(|| TraceEvent::QueryStart {
                sql: sql.to_string(),
            });
            Some(handle)
        } else {
            None
        };
        let started = std::time::Instant::now();

        // Live progress + process-wide registry: install a progress
        // estimator on this thread (propagated to workers through the
        // observability handoff) and publish the query in the running
        // table. The governor's row-checkpoint cadence feeds it, so the
        // bookkeeping is batch-amortized — operator counters are
        // untouched and stay byte-identical.
        let progress = (!options.introspection)
            .then(|| std::sync::Arc::new(obs::progress::ProgressState::new()));
        let _progress_guard = obs::progress::install(progress.clone());
        let query_id = progress
            .as_ref()
            .map(|p| obs::queryreg::global().register(sql, p.clone()));

        // Per-operator stats feed `outcome.profile`, the derived per-query
        // metrics, and the Q-error actuals behind the trace's
        // `qerror_summary` event, so the collector runs when any of the
        // three is wanted.
        let want_profile =
            options.collect_profile || query_metrics.is_some() || options.collect_trace;
        if want_profile {
            nra_obs::enable();
        }
        let own_io = options.simulate_io && !storage::iosim::is_enabled();
        if own_io {
            storage::iosim::enable(storage::iosim::IoConfig::default());
        }

        // Arm the query governor (memory budget / cancellation / fault
        // plan) for the duration of the call; ungoverned queries skip the
        // installation entirely. The catch_unwind backstop turns any panic
        // that escapes the worker harness (e.g. an injected coordinator
        // panic) into a structured error — the unwind runs the scope
        // guards, so observability teardown below still balances.
        let gov_arc = options.governor().map(std::sync::Arc::new);
        let gov_guard = engine::governor::install(gov_arc.clone());
        // One checkpoint before any work: an already-cancelled token or a
        // zero timeout stops even queries whose plans never reach an
        // instrumented operator loop (e.g. a bare filtered scan).
        let result = engine::governor::checkpoint("query-start")
            .map_err(NraError::Engine)
            .and_then(|()| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.run_statements(cat, sql, options)
                }))
                .unwrap_or_else(|payload| {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Err(NraError::Engine(EngineError::WorkerPanicked {
                        site: "query".to_string(),
                        message,
                    }))
                })
            });

        let mut profile = if want_profile {
            nra_obs::disable()
        } else {
            None
        };
        if let Some(p) = &mut profile {
            p.outcome = Some(
                match &result {
                    Ok(_) => "ok",
                    Err(NraError::Engine(EngineError::Cancelled { .. })) => "cancelled",
                    Err(NraError::Engine(EngineError::ResourceExhausted { .. })) => {
                        "resource-exhausted"
                    }
                    Err(NraError::Engine(EngineError::WorkerPanicked { .. })) => "worker-panicked",
                    Err(_) => "error",
                }
                .to_string(),
            );
            p.threads = threads;
        }
        if own_io {
            storage::iosim::disable();
        }

        // Governor teardown: dropping the guard flushes worker-pending
        // charges into the governor, after which `mem_used()` is the
        // query's memory high-water mark. Publish it as a trace event and
        // a process-level gauge so the two always agree. (It stays out of
        // the per-query scope: charge interleaving makes the peak
        // scheduling-dependent.)
        drop(gov_guard);
        if let Some(gov) = &gov_arc {
            let hw = gov.mem_used();
            trace::emit(|| TraceEvent::Governor {
                action: "mem-high-water".to_string(),
                detail: format!("{hw} bytes"),
            });
            metrics::global().gauge_max("nra_query_mem_high_water_bytes", &[], hw);
        }

        // Cardinality feedback: planner estimates vs. measured actuals,
        // summarized as the per-node Q-error (×100; 100 = perfect).
        let estimates = match (&profile, &result) {
            (Some(_), Ok((_, Some(bound)))) => Some(nra_core::estimate(bound, cat)),
            _ => None,
        };
        let mut qerror_max_x100 = 0;
        if let (Some(p), Some(est)) = (&profile, &estimates) {
            let mut qerrs = Vec::new();
            for (key, e) in est.iter() {
                if let Some(act) = merged_rows_out(p, key) {
                    qerrs.push(nra_core::qerror_x100(e, act));
                }
            }
            if !qerrs.is_empty() {
                let max_x100 = qerrs.iter().copied().max().unwrap_or(100);
                let mean_x100 = qerrs.iter().sum::<u64>() / qerrs.len() as u64;
                let nodes = qerrs.len();
                qerror_max_x100 = max_x100;
                trace::emit(|| TraceEvent::QErrorSummary {
                    nodes,
                    max_x100,
                    mean_x100,
                });
                metrics::both(|m| {
                    for q in &qerrs {
                        m.observe("nra_qerror_x100", &[], *q);
                    }
                });
            }
        }

        // Query-level counters, recorded in both scopes. Everything here
        // is derived from the merged profile or the result, never from
        // scheduling, so the per-query scope stays thread-invariant.
        let outcome_label = match &result {
            Ok(_) => "ok",
            Err(NraError::Engine(e)) => e.variant_name(),
            Err(NraError::Storage(_)) => "storage",
            Err(NraError::Sql(_)) => "sql",
        };
        metrics::both(|m| m.counter_add("nra_queries_total", &[("outcome", outcome_label)], 1));
        if result.is_err() {
            metrics::both(|m| m.counter_add("nra_errors_total", &[("variant", outcome_label)], 1));
        }
        if let Ok((rel, _)) = &result {
            let produced = rel.len() as u64;
            metrics::both(|m| m.counter_add("nra_rows_produced_total", &[], produced));
        }
        if let Some(p) = &profile {
            metrics::both(|m| record_op_metrics(m, p));
        }

        // Final progress + registry completion: force the snapshot to
        // 100% with the profile's row totals as the processed count
        // (the governor-cadence ticks undercount by design), then move
        // the query from the running table into the completed ring.
        let wall_ms = started.elapsed().as_millis() as u64;
        let result_rows = match &result {
            Ok((rel, _)) => rel.len() as u64,
            Err(_) => 0,
        };
        let mem_high_water = gov_arc.as_ref().map(|g| g.mem_used()).unwrap_or(0);
        let strategy = strategy_label(
            options.engine,
            result.as_ref().ok().and_then(|(_, b)| b.as_ref()),
        );
        if let Some(p) = &progress {
            p.raise_mem(mem_high_water);
            let processed = profile
                .as_ref()
                .map(|pr| pr.ops.iter().map(|(_, s)| s.rows_in).sum::<u64>())
                .unwrap_or(0);
            p.finish(
                processed,
                if result.is_ok() {
                    "done"
                } else {
                    outcome_label
                },
            );
        }
        if let Some(id) = query_id {
            obs::queryreg::global().complete(obs::queryreg::QueryRecord {
                id,
                sql: obs::queryreg::normalize_sql(sql),
                outcome: outcome_label.to_string(),
                wall_ms,
                rows: result_rows,
                threads: threads as u64,
                qerror_x100: qerror_max_x100,
                mem_bytes: mem_high_water,
                strategy: strategy.to_string(),
                session: options.session,
            });
        }

        let trace = trace_handle.map(|handle| {
            if let Ok((rel, _)) = &result {
                let rows = rel.len() as u64;
                trace::emit(|| TraceEvent::QueryEnd {
                    rows,
                    wall_ns: started.elapsed().as_nanos() as u64,
                });
            }
            trace::stop();
            handle.take()
        });

        // Snapshot the per-query scope (it is torn down when
        // `_metrics_guard` drops) and feed the environment sink, on the
        // error path too — failed queries are exactly when telemetry
        // matters.
        let metrics_snapshot = query_metrics.as_ref().map(|r| r.snapshot());
        if let (Some(path), Some(snap)) = (&metrics_env, &metrics_snapshot) {
            use std::io::Write;
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(snap.to_jsonl().as_bytes()));
        }

        // Slow-query log: threshold from the options or `NRA_SLOW_MS`
        // (`0` logs everything). Failed queries are logged too, without
        // plan text — they are exactly when the record matters.
        let slow_threshold = options.slow_ms.or_else(obs::slowlog::env_threshold_ms);
        let slow = progress.is_some() && slow_threshold.is_some_and(|t| wall_ms >= t);
        if slow {
            metrics::both(|m| m.counter_add("nra_slow_queries_total", &[], 1));
        }
        let slow_path = slow
            .then(|| {
                options
                    .slow_log
                    .clone()
                    .or_else(|| obs::slowlog::env_log_path().map(Into::into))
            })
            .flatten();
        let emit_slow = |plan: Option<&str>, log_profile: Option<&obs::Profile>| {
            let (Some(path), Some(p)) = (&slow_path, &progress) else {
                return;
            };
            let statement = obs::queryreg::normalize_sql(sql);
            let snapshot = p.snapshot();
            let record = obs::slowlog::SlowRecord {
                statement: &statement,
                outcome: outcome_label,
                wall_ms,
                threads: threads as u64,
                rows: result_rows,
                strategy,
                mem_bytes: mem_high_water,
                plan,
                profile: log_profile,
                progress: &snapshot,
            };
            use std::io::Write;
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(record.to_jsonl().as_bytes()));
        };

        let (rows, bound) = match result {
            Ok(v) => v,
            Err(e) => {
                emit_slow(None, profile.as_ref());
                return Err(e);
            }
        };
        let log_profile = profile.clone();
        let profile = profile.filter(|_| options.collect_profile);

        // The analyzed plan is rendered only when the executed pipeline
        // matches the textbook operator tree node for node: Algorithm 1
        // (the two-pass original strategy) on a single statement. Other
        // strategies fuse or reorder operators away from the tree.
        let plan = match (&profile, &bound, options.engine) {
            (Some(p), Some(b), Engine::NestedRelational(Strategy::Original)) => {
                let tree = nra_core::TreeExpr::build(b);
                let mut out = tree.render_plan_analyzed_with_estimates(p, estimates.as_ref());
                out.push_str(&format!(
                    "-- {} row(s); total operator time {:.3} ms\n",
                    rows.len(),
                    p.total_wall_ns() as f64 / 1e6
                ));
                if let Some(io) = &p.io {
                    out.push_str(&format!(
                        "-- io: {} sequential page(s), {} random hit(s), {} random miss(es)\n",
                        io.seq_pages, io.rand_hits, io.rand_misses
                    ));
                }
                Some(out)
            }
            _ => None,
        };

        emit_slow(plan.as_deref(), log_profile.as_ref());

        Ok(QueryOutcome {
            rows,
            plan,
            profile,
            metrics: metrics_snapshot,
            trace,
            threads,
            progress: progress.as_ref().map(|p| p.snapshot()),
        })
    }

    /// `ANALYZE <table>`: recompute per-column statistics (distinct-value
    /// and null counts) used by the cardinality estimator, returning the
    /// summary as plan text. Counts as a catalog write for plan-cache
    /// purposes: fresh statistics can change strategy and estimate
    /// choices, so cached plans are invalidated.
    fn run_analyze(&self, table: &str, threads: usize) -> Result<QueryOutcome, NraError> {
        let stats = self.catalog().table(table)?.analyze();
        if self.is_durable() {
            // Statistics steer the planner; losing them across a
            // restart would silently change plan shapes, so ANALYZE is
            // logged like any other catalog mutation.
            self.durable_log(&storage::wal::WalRecord::Analyze {
                table: table.to_string(),
                stats: stats.clone(),
            })?;
        }
        self.shared.invalidate_plans();
        self.after_durable_mutation();
        nra_obs::metrics::both(|m| m.counter_add("nra_analyze_total", &[("table", table)], 1));
        let mut plan = format!("analyze {table}: {} row(s)\n", stats.row_count);
        for col in &stats.columns {
            plan.push_str(&format!(
                "  {}: ndv={} nulls={}\n",
                col.name, col.ndv, col.null_count
            ));
        }
        Ok(QueryOutcome {
            rows: Relation::new(Schema::new(Vec::new())),
            plan: Some(plan),
            profile: None,
            metrics: None,
            trace: None,
            threads,
            progress: None,
        })
    }

    /// Parse and run a full (possibly compound) query through the
    /// engine in `options`, returning the result and — for
    /// single-statement queries — the bound form of the statement for
    /// plan rendering.
    ///
    /// Repeat statements are answered from the process-wide plan cache
    /// (keyed on this database's id plus the normalized SQL, valid
    /// while the schema version matches): a hit skips the parser and
    /// binder entirely. Cache counters live in the global metrics
    /// scope only — whether a statement hits depends on process
    /// history, which must not leak into the thread-invariant per-query
    /// snapshot.
    fn run_statements(
        &self,
        cat: &Catalog,
        sql: &str,
        options: &QueryOptions,
    ) -> Result<(Relation, Option<BoundQuery>), NraError> {
        let engine = options.engine;
        let version = self.shared.version.load(Ordering::SeqCst);
        let cache_key = options
            .plan_cache_enabled()
            .then(|| nra_sql::normalize::normalize(sql));
        let cached = cache_key
            .as_deref()
            .and_then(|key| plancache::lookup(self.shared.id, version, key));
        let hit = cached.is_some();
        let (query, bound_first, bound_rest) = match cached {
            Some(plan) => {
                obs::trace::emit(|| obs::trace::TraceEvent::Governor {
                    action: "plan-cache".to_string(),
                    detail: "hit".to_string(),
                });
                (plan.query, plan.bound_first, plan.bound_rest)
            }
            None => {
                let query = nra_sql::parse_query(sql)?;
                let bound_first = nra_sql::bind(&query.first, cat)?;
                let bound_rest = query
                    .compounds
                    .iter()
                    .map(|part| nra_sql::bind(&part.stmt, cat))
                    .collect::<Result<Vec<_>, _>>()?;
                (query, bound_first, bound_rest)
            }
        };
        if let (Some(key), false) = (cache_key, hit) {
            plancache::insert(
                self.shared.id,
                version,
                key,
                plancache::CachedPlan {
                    query: query.clone(),
                    bound_first: bound_first.clone(),
                    bound_rest: bound_rest.clone(),
                    strategy: strategy_label(engine, Some(&bound_first)),
                },
            );
        }
        let single = query.compounds.is_empty();
        // Seed the progress denominator from the planner's cardinality
        // estimates for the first block (compound arms only add to the
        // numerator, which the 99%-cap before `finish` absorbs).
        if let Some(p) = obs::progress::current() {
            let est = nra_core::estimate(&bound_first, cat);
            p.set_estimated(est.iter().map(|(_, v)| v).sum());
        }
        let mut exec_phase = obs::trace::phase(|| "execute".to_string());
        let mut rel = self.run_bound(cat, &bound_first, engine)?;
        for (part, bound) in query.compounds.iter().zip(&bound_rest) {
            let right = self.run_bound(cat, bound, engine)?;
            use nra_engine::ops::setops;
            use nra_sql::SetOpKind;
            rel = match (part.op, part.all) {
                (SetOpKind::Union, false) => setops::union(&rel, &right),
                (SetOpKind::Union, true) => setops::union_all(&rel, &right),
                (SetOpKind::Intersect, false) => setops::intersect(&rel, &right),
                (SetOpKind::Intersect, true) => setops::intersect_all(&rel, &right),
                (SetOpKind::Except, false) => setops::difference(&rel, &right),
                (SetOpKind::Except, true) => setops::difference_all(&rel, &right),
            }?;
        }
        if !query.order_by.is_empty() {
            let mut keys = Vec::new();
            for (expr, desc) in &query.order_by {
                let idx = match expr {
                    // SQL-style positional reference: ORDER BY 1.
                    nra_sql::ScalarExpr::Literal(nra_storage::Value::Int(n))
                        if *n >= 1 && (*n as usize) <= rel.schema().len() =>
                    {
                        *n as usize - 1
                    }
                    nra_sql::ScalarExpr::Column { qualifier, name } => {
                        let full = match qualifier {
                            Some(q) => format!("{q}.{name}"),
                            None => name.clone(),
                        };
                        rel.schema().resolve(&full).map_err(NraError::Storage)?
                    }
                    other => {
                        return Err(NraError::Sql(SqlError::bind(format!(
                            "ORDER BY supports output columns and positions, not `{other}`"
                        ))))
                    }
                };
                keys.push((idx, *desc));
            }
            rel.rows_mut().sort_by(|a, b| {
                for &(idx, desc) in &keys {
                    let ord = a[idx].total_cmp(&b[idx]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = query.limit {
            rel.rows_mut().truncate(n);
        }
        exec_phase.set_rows(rel.len() as u64);
        drop(exec_phase);
        Ok((rel, single.then_some(bound_first)))
    }

    /// Execute a prepared (bound) single statement.
    fn run_bound(
        &self,
        cat: &Catalog,
        query: &BoundQuery,
        engine: Engine,
    ) -> Result<Relation, NraError> {
        Ok(match engine {
            Engine::NestedRelational(strategy) => nra_core::execute(query, cat, strategy)?,
            Engine::Baseline => nra_engine::baseline::execute(query, cat)?,
            Engine::Reference => nra_engine::reference::evaluate(query, cat)?,
        })
    }

    /// The one-line `EXPLAIN` text. For a compound query, explains the
    /// first `SELECT` block and notes the set operations applied on top.
    fn explain_text(&self, cat: &Catalog, sql: &str) -> Result<String, NraError> {
        let parsed = nra_sql::parse_query(sql)?;
        let suffix = if parsed.compounds.is_empty() {
            String::new()
        } else {
            format!(
                "; then {} set operation(s) over the per-block results",
                parsed.compounds.len()
            )
        };
        let bound = nra_sql::bind(&parsed.first, cat)?;
        let nr = match nra_core::auto_strategy(&bound) {
            Strategy::PositiveRewrite => "positive rewrite (semijoin cascade)",
            Strategy::BottomUpPushdown => "bottom-up with nest push-down",
            Strategy::BottomUp => "bottom-up",
            Strategy::Optimized => "single-sort pipelined cascade",
            Strategy::Original => "Algorithm 1 (two-pass)",
            Strategy::Auto => unreachable!("auto resolves to a concrete strategy"),
        };
        let baseline = nra_engine::baseline::describe(&bound, cat);
        Ok(format!(
            "nested relational: {nr}; baseline (System A): {baseline}{suffix}"
        ))
    }
}

/// Short machine-readable name of the strategy a query ran with, for
/// the query registry and slow-query log. `Auto` is resolved to the
/// concrete strategy when the bound query is available (single-statement
/// successes); otherwise it stays `auto`.
fn strategy_label(engine: Engine, bound: Option<&BoundQuery>) -> &'static str {
    match engine {
        Engine::Baseline => "baseline",
        Engine::Reference => "reference",
        Engine::NestedRelational(s) => {
            let s = match (s, bound) {
                (Strategy::Auto, Some(b)) => nra_core::auto_strategy(b),
                (s, _) => s,
            };
            match s {
                Strategy::Auto => "auto",
                Strategy::Original => "original",
                Strategy::Optimized => "optimized",
                Strategy::BottomUp => "bottom-up",
                Strategy::BottomUpPushdown => "bottom-up-pushdown",
                Strategy::PositiveRewrite => "positive-rewrite",
            }
        }
    }
}

/// Sum of `rows_out` over every profile entry matching `prefix` exactly
/// or with a `[kind]` suffix (`b2/nest` matches `b2/nest[sort]`); `None`
/// when nothing matched — the estimator may cover nodes an optimized
/// pipeline fused away.
/// `NRA_MEM_LIMIT`, parsed the same way the governor parses it — the
/// admission controller reserves exactly the budget the query will run
/// under.
fn env_mem_limit() -> Option<u64> {
    std::env::var("NRA_MEM_LIMIT")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
}

fn merged_rows_out(profile: &obs::Profile, prefix: &str) -> Option<u64> {
    let mut acc: Option<u64> = None;
    for (name, stats) in &profile.ops {
        let matches =
            name == prefix || (name.starts_with(prefix) && name[prefix.len()..].starts_with('['));
        if matches {
            *acc.get_or_insert(0) += stats.rows_out;
        }
    }
    acc
}

/// Project a merged profile into per-operator metric counters.
///
/// Wall times and partition counts stay out deliberately: every counter
/// recorded here is identical at any thread count, which is what makes
/// the per-query metrics scope deterministic.
fn record_op_metrics(reg: &obs::metrics::Registry, profile: &obs::Profile) {
    for (name, s) in &profile.ops {
        let labels = [("op", name.as_str())];
        reg.counter_add("nra_op_invocations_total", &labels, s.invocations);
        reg.counter_add("nra_op_rows_in_total", &labels, s.rows_in);
        reg.counter_add("nra_op_rows_out_total", &labels, s.rows_out);
        if s.hash_entries > 0 {
            reg.counter_add("nra_op_hash_entries_total", &labels, s.hash_entries);
        }
        if s.hash_bytes > 0 {
            reg.counter_add("nra_op_hash_bytes_total", &labels, s.hash_bytes);
        }
        if s.nest_groups > 0 {
            reg.counter_add("nra_op_nest_groups_total", &labels, s.nest_groups);
        }
        if s.padded > 0 {
            reg.counter_add("nra_op_padded_total", &labels, s.padded);
        }
        for (count, outcome) in [(s.pass, "pass"), (s.fail, "fail"), (s.unknown, "unknown")] {
            if count > 0 {
                reg.counter_add(
                    "nra_op_link_outcomes_total",
                    &[("op", name.as_str()), ("outcome", outcome)],
                    count,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nra_storage::{ColumnType, Value};

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            "x",
            vec![
                Column::not_null("k", ColumnType::Int),
                Column::new("v", ColumnType::Int),
            ],
            &["k"],
        )
        .unwrap();
        db.insert(
            "x",
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Null],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let db = db();
        let out = db
            .execute("select k from x where v is not null", &QueryOptions::new())
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(out.plan.is_none() && out.profile.is_none() && out.trace.is_none());
    }

    #[test]
    fn engines_agree() {
        let db = db();
        let sql = "select k from x where v not in (select v from x x2 where x2.k <> x.k)";
        let run = |engine| {
            db.execute(sql, &QueryOptions::new().engine(engine))
                .unwrap()
                .rows
        };
        let nr = run(Engine::default());
        let base = run(Engine::Baseline);
        let oracle = run(Engine::Reference);
        assert!(nr.multiset_eq(&oracle));
        assert!(base.multiset_eq(&oracle));
    }

    #[test]
    fn explain_mentions_both_engines() {
        let db = db();
        let out = db
            .execute(
                "select k from x where v in (select v from x x2)",
                &QueryOptions::new().explain_only(true),
            )
            .unwrap();
        let s = out.plan.unwrap();
        assert!(s.contains("nested relational"));
        assert!(s.contains("System A"));
        assert_eq!(out.rows.len(), 0, "explain_only does not execute");
    }

    #[test]
    fn outcome_carries_requested_artifacts() {
        let db = db();
        let sql = "select k from x where v in (select v from x x2 where x2.k <> x.k)";
        let out = db
            .execute(
                sql,
                &QueryOptions::new()
                    .strategy(Strategy::Original)
                    .collect_profile(true)
                    .collect_trace(true)
                    .threads(1),
            )
            .unwrap();
        assert_eq!(out.threads, 1);
        let profile = out.profile.expect("profile requested");
        assert_eq!(profile.threads, 1);
        assert!(!profile.ops.is_empty());
        assert!(out.plan.expect("Algorithm 1 plan").contains("rows="));
        assert!(!out.trace.expect("trace requested").entries.is_empty());
    }

    #[test]
    fn analyze_statement_reports_stats() {
        let db = db();
        let out = db.execute("analyze x", &QueryOptions::new()).unwrap();
        let plan = out.plan.expect("analyze returns a summary");
        assert!(plan.contains("analyze x: 2 row(s)"), "{plan}");
        assert!(plan.contains("v: ndv=1 nulls=1"), "{plan}");
        let stats = db.catalog().table("x").unwrap().stats().unwrap();
        assert_eq!(stats.row_count, 2);
    }

    #[test]
    fn metrics_snapshot_counts_rows_and_outcome() {
        let db = db();
        let out = db
            .execute(
                "select k from x where v is not null",
                &QueryOptions::new()
                    .strategy(Strategy::Original)
                    .collect_metrics(true),
            )
            .unwrap();
        let snap = out.metrics.expect("metrics requested");
        assert_eq!(snap.counter_total("nra_rows_produced_total"), 1);
        use nra_obs::metrics::Metric;
        assert_eq!(
            snap.get("nra_queries_total", &[("outcome", "ok")]),
            Some(&Metric::Counter(1))
        );
        assert!(snap.counter_total("nra_op_rows_out_total") > 0);
        assert!(out.profile.is_none(), "profile was not requested");
    }

    #[test]
    fn errors_are_surfaced_with_sources() {
        let db = db();
        let err = db
            .execute("select nope from x", &QueryOptions::new())
            .unwrap_err();
        assert!(std::error::Error::source(&err).is_some(), "{err}");
        assert!(db.execute("not sql at all", &QueryOptions::new()).is_err());
        assert!(db
            .insert("x", vec![vec![Value::Null, Value::Null]])
            .is_err());
        assert!(db.create_table("x", vec![], &[]).is_err());
    }
}
