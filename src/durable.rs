//! Crash-safe durability for the facade: `Database::open` persists the
//! catalog under a directory as checksummed snapshot files plus an
//! append-only write-ahead log (see `nra_storage::{wal, disk}` and
//! DESIGN.md §16).
//!
//! Protocol (write-ahead, fsync-on-commit):
//!
//! 1. A durable mutation (`CREATE TABLE`, `INSERT`, `ANALYZE`) validates
//!    fully in memory first, so the apply step cannot fail.
//! 2. The record is appended to `wal.log` and fsynced *before* the
//!    in-memory catalog changes. If the append or fsync fails, the call
//!    errors and the catalog is untouched — an acknowledged mutation is
//!    always on disk, an unacknowledged one never survives recovery.
//! 3. A checkpoint writes the whole catalog to `snapshot-<lsn>.nra`
//!    (write-tmp → fsync → rename → fsync-dir), then truncates the log.
//!
//! Recovery (`Database::open`) loads the newest valid snapshot, replays
//! log records with `lsn > snapshot lsn`, truncates a torn tail
//! (reporting what was dropped in [`RecoveryReport`]), and refuses
//! startup with [`EngineError::Corruption`] only when damage cannot be
//! attributed to a torn append. The schema version is restored to the
//! last applied LSN so the plan cache can never confuse pre- and
//! post-recovery catalogs.
//!
//! Lock order (deadlock-free by construction): the catalog lock is
//! always taken *before* the durability mutex, never the other way.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use nra_engine::EngineError;
use nra_obs::metrics;
use nra_storage::disk;
use nra_storage::wal::{self, WalRecord, WalWriter};
use nra_storage::{Catalog, StorageError};

use crate::{Database, NraError};

/// The write-ahead log's file name inside a database directory.
pub const WAL_FILE: &str = "wal.log";

/// Records appended since the last checkpoint before an automatic one
/// is taken (override with `NRA_CHECKPOINT_EVERY`; `0` disables).
const DEFAULT_CHECKPOINT_EVERY: u64 = 4096;

/// What `Database::open` found and did while recovering a directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the snapshot recovery started from (0 = none).
    pub snapshot_lsn: u64,
    /// File name of that snapshot, when one was loaded.
    pub snapshot_file: Option<String>,
    /// Log records replayed on top of the snapshot.
    pub replayed: u64,
    /// Torn-tail records dropped (and truncated away).
    pub dropped_records: u64,
    /// Bytes the torn tail occupied.
    pub dropped_bytes: u64,
    /// Whether the log was repaired (tail truncated) during this open.
    pub repaired: bool,
    /// Human-readable notes about degradation (empty on a clean open).
    pub messages: Vec<String>,
}

/// A point-in-time view of the durability layer, for the `nra_sys.wal`
/// introspection table and the CLI.
#[derive(Debug, Clone)]
pub struct DurabilityInfo {
    pub dir: PathBuf,
    /// Last LSN acknowledged (snapshot + log).
    pub last_lsn: u64,
    /// LSN covered by the newest installed snapshot.
    pub snapshot_lsn: u64,
    /// Current size of `wal.log` in bytes (including the file magic).
    pub wal_bytes: u64,
    /// Records appended since the last checkpoint.
    pub records_since_checkpoint: u64,
    /// Whether a failed write has disabled further durable mutations
    /// until the database is reopened.
    pub poisoned: bool,
}

/// The durable half of a database: the open WAL writer plus the LSN
/// bookkeeping. Lives behind a mutex in `DbShared`; the catalog lock is
/// always acquired first (see the module doc's lock order).
pub(crate) struct Durability {
    dir: PathBuf,
    wal: WalWriter,
    last_lsn: u64,
    snapshot_lsn: u64,
    records_since_checkpoint: u64,
    checkpoint_every: u64,
    report: RecoveryReport,
    poisoned: Option<String>,
}

/// Keep corruption structured across the storage → facade boundary.
fn storage_err(e: StorageError) -> NraError {
    match e {
        StorageError::Corruption { file, lsn, detail } => {
            NraError::Engine(EngineError::Corruption { file, lsn, detail })
        }
        e => NraError::Storage(e),
    }
}

fn io_nra(context: &str, e: std::io::Error) -> NraError {
    NraError::Storage(StorageError::Io(format!("{context}: {e}")))
}

fn checkpoint_every_from_env() -> Result<u64, NraError> {
    match std::env::var("NRA_CHECKPOINT_EVERY") {
        Err(_) => Ok(DEFAULT_CHECKPOINT_EVERY),
        Ok(v) => v.trim().parse::<u64>().map_err(|_| {
            NraError::Engine(EngineError::Config {
                var: "NRA_CHECKPOINT_EVERY".into(),
                value: v.clone(),
                detail: "must be a record count (0 disables automatic checkpoints)".into(),
            })
        }),
    }
}

/// Apply one replayed record to the recovering catalog. Records passed
/// validation before they were logged, so a failure here means the log
/// and snapshot disagree — corruption, not a user error.
fn apply(catalog: &mut Catalog, lsn: u64, rec: WalRecord) -> Result<(), NraError> {
    let applied = match rec {
        WalRecord::CreateTable(table) => catalog.add_table(table),
        WalRecord::Insert { table, rows } => {
            catalog.table_mut(&table).and_then(|t| t.insert_many(rows))
        }
        WalRecord::Analyze { table, stats } => catalog.table(&table).map(|t| t.set_stats(stats)),
    };
    applied.map_err(|e| {
        NraError::Engine(EngineError::Corruption {
            file: WAL_FILE.into(),
            lsn,
            detail: format!("record does not apply to the recovered catalog: {e}"),
        })
    })
}

impl Database {
    /// Open (creating if necessary) a durable database rooted at `path`.
    ///
    /// Recovery runs before the handle is returned: the newest valid
    /// snapshot is loaded, the write-ahead log is replayed past it, a
    /// torn tail is truncated (graceful degradation, reported in
    /// [`Database::recovery`]), and unrecoverable damage refuses startup
    /// with a structured [`EngineError::Corruption`]. The schema version
    /// is restored to the last applied LSN.
    pub fn open(path: impl AsRef<Path>) -> Result<Database, NraError> {
        nra_engine::config::validate_env().map_err(NraError::Engine)?;
        let checkpoint_every = checkpoint_every_from_env()?;
        let dir = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_nra("create db directory", e))?;

        let mut report = RecoveryReport::default();
        let (mut catalog, snapshot_lsn) =
            match disk::load_latest_snapshot(&dir).map_err(storage_err)? {
                Some((cat, lsn, file)) => {
                    report.snapshot_file = Some(file);
                    (cat, lsn)
                }
                None => (Catalog::new(), 0),
            };
        report.snapshot_lsn = snapshot_lsn;

        let wal_path = dir.join(WAL_FILE);
        let outcome = wal::replay(&wal_path).map_err(storage_err)?;
        let mut last_lsn = snapshot_lsn;
        for (lsn, rec) in outcome.records {
            if lsn <= snapshot_lsn {
                // Already folded into the snapshot (a crash between the
                // snapshot rename and the log truncation leaves these).
                continue;
            }
            apply(&mut catalog, lsn, rec)?;
            last_lsn = lsn;
            report.replayed += 1;
        }
        report.dropped_records = outcome.dropped_records;
        report.dropped_bytes = outcome.dropped_bytes;
        if outcome.dropped_bytes > 0 {
            wal::truncate_to(&wal_path, outcome.good_len).map_err(storage_err)?;
            report.repaired = true;
            report.messages.push(format!(
                "dropped a torn tail from {WAL_FILE}: {} record(s), {} byte(s) \
                 past the last committed record",
                outcome.dropped_records, outcome.dropped_bytes
            ));
        }
        let wal_writer = WalWriter::open_append(&wal_path).map_err(storage_err)?;

        if report.replayed > 0 || report.repaired {
            let m = metrics::global();
            m.counter_add("nra_wal_recoveries_total", &[], 1);
            m.counter_add("nra_wal_replayed_records_total", &[], report.replayed);
            m.counter_add("nra_wal_dropped_records_total", &[], report.dropped_records);
        }

        let durability = Durability {
            dir,
            records_since_checkpoint: report.replayed,
            wal: wal_writer,
            last_lsn,
            snapshot_lsn,
            checkpoint_every,
            report,
            poisoned: None,
        };
        Ok(Database::assemble(
            catalog,
            last_lsn,
            Some(Mutex::new(durability)),
        ))
    }

    /// Whether this database persists mutations (opened via
    /// [`Database::open`] rather than created in memory).
    pub fn is_durable(&self) -> bool {
        self.shared.durable.is_some()
    }

    /// The recovery report from this handle's [`Database::open`] call
    /// (`None` for in-memory databases).
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.shared
            .durable
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()).report.clone())
    }

    /// Current durability state (`None` for in-memory databases).
    pub fn durability(&self) -> Option<DurabilityInfo> {
        self.shared.durable.as_ref().map(|m| {
            let d = m.lock().unwrap_or_else(|e| e.into_inner());
            DurabilityInfo {
                dir: d.dir.clone(),
                last_lsn: d.last_lsn,
                snapshot_lsn: d.snapshot_lsn,
                wal_bytes: d.wal.len(),
                records_since_checkpoint: d.records_since_checkpoint,
                poisoned: d.poisoned.is_some(),
            }
        })
    }

    /// Write a snapshot of the catalog at the current LSN, install it
    /// atomically, and truncate the write-ahead log. Returns the
    /// snapshot's LSN. Errors on in-memory databases.
    pub fn checkpoint(&self) -> Result<u64, NraError> {
        let Some(dmx) = &self.shared.durable else {
            return Err(NraError::Storage(StorageError::Io(
                "checkpoint requires a durable database (use Database::open)".into(),
            )));
        };
        // Lock order: catalog (read) before durability.
        let cat = self.catalog();
        let mut d = dmx.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(why) = &d.poisoned {
            return Err(NraError::Storage(StorageError::Io(format!(
                "durability disabled: {why}; reopen the database"
            ))));
        }
        let lsn = d.last_lsn;
        disk::write_snapshot(&d.dir, &cat, lsn).map_err(storage_err)?;
        // The snapshot is installed; resetting the log is safe even if
        // the process dies first — replay skips lsn ≤ snapshot lsn.
        d.wal.reset().map_err(storage_err)?;
        d.snapshot_lsn = lsn;
        d.records_since_checkpoint = 0;
        disk::sweep_snapshots(&d.dir, lsn);
        metrics::global().counter_add("nra_checkpoints_total", &[], 1);
        Ok(lsn)
    }

    /// Append one record to the WAL and fsync it (no-op for in-memory
    /// databases). Called with the catalog write lock held, *before*
    /// the in-memory apply — write-ahead discipline.
    pub(crate) fn durable_log(&self, rec: &WalRecord) -> Result<(), NraError> {
        let Some(dmx) = &self.shared.durable else {
            return Ok(());
        };
        let mut d = dmx.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(why) = &d.poisoned {
            return Err(NraError::Storage(StorageError::Io(format!(
                "durable mutations disabled: {why}; reopen the database"
            ))));
        }
        let lsn = d.last_lsn + 1;
        match d.wal.append_sync(lsn, rec) {
            Ok(bytes) => {
                d.last_lsn = lsn;
                d.records_since_checkpoint += 1;
                let m = metrics::global();
                m.counter_add("nra_wal_appends_total", &[], 1);
                m.counter_add("nra_wal_bytes_total", &[], bytes);
                m.counter_add("nra_wal_fsyncs_total", &[], 1);
                Ok(())
            }
            Err(e) => {
                if d.wal.is_poisoned() {
                    d.poisoned = Some(e.to_string());
                }
                Err(storage_err(e))
            }
        }
    }

    /// Take an automatic checkpoint when enough records accumulated.
    /// Called after a durable mutation completes, with no catalog guard
    /// held. Best-effort: a failed checkpoint leaves the log intact and
    /// is retried after the next mutation.
    pub(crate) fn after_durable_mutation(&self) {
        let Some(dmx) = &self.shared.durable else {
            return;
        };
        let due = {
            let d = dmx.lock().unwrap_or_else(|e| e.into_inner());
            d.poisoned.is_none()
                && d.checkpoint_every > 0
                && d.records_since_checkpoint >= d.checkpoint_every
        };
        if due {
            let _ = self.checkpoint();
        }
    }
}
