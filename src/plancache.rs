//! Process-wide plan cache: normalized SQL → bound plan.
//!
//! Entries are keyed on `(database id, normalized statement)` — two
//! databases never share plans even for identical SQL, because a
//! [`BoundQuery`] embeds catalog-specific name resolutions. Each entry
//! records the database's schema version at insert time; a lookup whose
//! version no longer matches drops the entry and counts an
//! invalidation. Catalog writes (DDL, `INSERT`, `ANALYZE`, and direct
//! [`Database::catalog_mut`](crate::Database::catalog_mut) access) also
//! purge the database's entries eagerly, so `nra_sys.plan_cache` never
//! shows plans a changed schema has orphaned.
//!
//! The cache is bounded at [`CAPACITY`] entries with FIFO eviction:
//! its footprint is O(capacity × plan size) regardless of how long the
//! process serves queries.
//!
//! Counters (`nra_plan_cache_hits_total` / `_misses_total` /
//! `_invalidations_total` / `_evictions_total` and the
//! `nra_plan_cache_entries` gauge) go to the *global* metrics registry
//! only: whether a statement hits the cache depends on process history,
//! so the per-query metrics scope — which must stay byte-identical
//! across runs and thread counts — never sees them.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, MutexGuard, OnceLock};

use nra_obs::metrics;
use nra_sql::{BoundQuery, Query};

/// Maximum cached plans across all databases in the process.
pub(crate) const CAPACITY: usize = 256;

/// Everything needed to skip the parser and binder on a repeat of the
/// same statement.
#[derive(Debug, Clone)]
pub(crate) struct CachedPlan {
    /// The parsed query (compound arms, `ORDER BY`, `LIMIT`).
    pub query: Query,
    /// Bound form of the first `SELECT` block.
    pub bound_first: BoundQuery,
    /// Bound forms of the compound arms, in order.
    pub bound_rest: Vec<BoundQuery>,
    /// Auto-resolved strategy label recorded for introspection.
    pub strategy: &'static str,
}

#[derive(Debug)]
struct Entry {
    version: u64,
    hits: u64,
    plan: CachedPlan,
}

#[derive(Debug, Default)]
struct Cache {
    map: HashMap<(u64, String), Entry>,
    /// Insertion order for FIFO eviction (and `nra_sys.plan_cache` row
    /// order).
    fifo: VecDeque<(u64, String)>,
}

fn cache() -> MutexGuard<'static, Cache> {
    static CACHE: OnceLock<Mutex<Cache>> = OnceLock::new();
    CACHE
        .get_or_init(|| Mutex::new(Cache::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn publish_len(len: usize) {
    metrics::global().gauge_set("nra_plan_cache_entries", &[], len as u64);
}

/// Fetch the plan cached for `(db, sql_norm)`, provided it was inserted
/// at the current schema `version`. A version mismatch drops the stale
/// entry (counted as an invalidation); both that and a plain absence
/// count as a miss.
pub(crate) fn lookup(db: u64, version: u64, sql_norm: &str) -> Option<CachedPlan> {
    let mut c = cache();
    let key = (db, sql_norm.to_string());
    match c.map.get_mut(&key) {
        Some(entry) if entry.version == version => {
            entry.hits += 1;
            metrics::global().counter_add("nra_plan_cache_hits_total", &[], 1);
            Some(entry.plan.clone())
        }
        Some(_) => {
            c.map.remove(&key);
            c.fifo.retain(|k| k != &key);
            publish_len(c.map.len());
            metrics::global().counter_add("nra_plan_cache_invalidations_total", &[], 1);
            metrics::global().counter_add("nra_plan_cache_misses_total", &[], 1);
            None
        }
        None => {
            metrics::global().counter_add("nra_plan_cache_misses_total", &[], 1);
            None
        }
    }
}

/// Insert (or refresh) the plan for `(db, sql_norm)` as of schema
/// `version`, evicting the oldest entry at capacity.
pub(crate) fn insert(db: u64, version: u64, sql_norm: String, plan: CachedPlan) {
    let mut c = cache();
    let key = (db, sql_norm);
    if !c.map.contains_key(&key) {
        while c.fifo.len() >= CAPACITY {
            if let Some(oldest) = c.fifo.pop_front() {
                c.map.remove(&oldest);
                metrics::global().counter_add("nra_plan_cache_evictions_total", &[], 1);
            }
        }
        c.fifo.push_back(key.clone());
    }
    c.map.insert(
        key,
        Entry {
            version,
            hits: 0,
            plan,
        },
    );
    publish_len(c.map.len());
}

fn remove_db(db: u64, count_invalidations: bool) {
    let mut c = cache();
    let before = c.map.len();
    c.map.retain(|k, _| k.0 != db);
    let removed = before - c.map.len();
    if removed == 0 {
        return;
    }
    c.fifo.retain(|k| k.0 != db);
    publish_len(c.map.len());
    if count_invalidations {
        metrics::global().counter_add("nra_plan_cache_invalidations_total", &[], removed as u64);
    }
}

/// Drop every entry belonging to `db`, each counted as an
/// invalidation. Called on catalog writes (DDL, insert, `ANALYZE`).
pub(crate) fn purge_db(db: u64) {
    remove_db(db, true);
}

/// Drop every entry belonging to `db` without counting invalidations —
/// the database itself is gone (last handle dropped), not its schema
/// changed.
pub(crate) fn forget_db(db: u64) {
    remove_db(db, false);
}

/// One `nra_sys.plan_cache` row.
pub(crate) struct CacheRow {
    pub statement: String,
    pub strategy: &'static str,
    pub hits: u64,
    pub version: u64,
}

/// Snapshot of `db`'s entries in insertion order, for the
/// `nra_sys.plan_cache` system table.
pub(crate) fn snapshot_db(db: u64) -> Vec<CacheRow> {
    let c = cache();
    c.fifo
        .iter()
        .filter(|k| k.0 == db)
        .filter_map(|k| {
            c.map.get(k).map(|entry| CacheRow {
                statement: k.1.clone(),
                strategy: entry.plan.strategy,
                hits: entry.hits,
                version: entry.version,
            })
        })
        .collect()
}
