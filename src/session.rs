//! Sessions: the per-client execution handle over a shared
//! [`Database`].
//!
//! A [`Session`] owns what is *per client* in a multi-client setting:
//! default [`QueryOptions`] applied to every statement (thread budget,
//! memory/timeout governor limits, plan-cache opt-out, …), a set of
//! named prepared statements, and the session id stamped into the query
//! registry (`nra_sys.queries.session`). Everything *shared* — the
//! catalog, the plan cache, the admission controller, metrics — lives
//! in the [`Database`] the session was opened on.
//!
//! Sessions are `Send`: the TCP front end (`nra-server`) opens one per
//! connection and drives it from that connection's thread. Concurrent
//! read queries on different sessions run in parallel under the shared
//! catalog lock; catalog writes serialize against the drain.
//!
//! ```
//! use nra::{Database, QueryOptions};
//! use nra::storage::{Column, ColumnType, Value};
//!
//! let db = Database::new();
//! db.create_table("t", vec![Column::not_null("k", ColumnType::Int)], &["k"])
//!     .unwrap();
//! db.insert("t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
//!     .unwrap();
//!
//! let mut session = db.connect();
//! session.set_defaults(QueryOptions::new().threads(1));
//! session.prepare("all", "select k from t").unwrap();
//! assert_eq!(session.execute_prepared("all").unwrap().rows.len(), 2);
//! assert_eq!(session.execute("select k from t where k = 2").unwrap().rows.len(), 1);
//! ```

use std::collections::HashMap;

use crate::{sys, Database, NraError, QueryOptions, QueryOutcome};
use nra_sql::SqlError;

/// A connection-scoped handle for executing queries against a
/// [`Database`] (see the [module docs](self)). Obtained from
/// [`Database::connect`].
#[derive(Debug)]
pub struct Session {
    db: Database,
    id: u64,
    defaults: QueryOptions,
    prepared: HashMap<String, String>,
}

impl Database {
    /// Open a session: a handle carrying per-client execution defaults
    /// and prepared statements, stamped with a database-unique session
    /// id (starting at 1; id 0 is the one-shot [`Database::execute`]
    /// path).
    pub fn connect(&self) -> Session {
        Session {
            db: self.clone(),
            id: self.next_session_id(),
            defaults: QueryOptions::new(),
            prepared: HashMap::new(),
        }
    }
}

impl Session {
    /// The transient session behind [`Database::execute`]: id 0, stock
    /// defaults.
    pub(crate) fn one_shot(db: &Database) -> Session {
        Session {
            db: db.clone(),
            id: 0,
            defaults: QueryOptions::new(),
            prepared: HashMap::new(),
        }
    }

    /// This session's id (0 only for the internal one-shot session).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shared database this session executes against.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The default options applied by [`Session::execute`].
    pub fn defaults(&self) -> &QueryOptions {
        &self.defaults
    }

    /// Replace the session's default options (built with the
    /// [`QueryOptions`] chainable builder).
    pub fn set_defaults(&mut self, defaults: QueryOptions) {
        self.defaults = defaults;
    }

    /// Execute `sql` under the session's default options.
    pub fn execute(&self, sql: &str) -> Result<QueryOutcome, NraError> {
        let defaults = self.defaults.clone();
        self.execute_with(sql, &defaults)
    }

    /// Execute `sql` with explicit per-call options (the session id
    /// still applies; the session defaults do not).
    pub fn execute_with(
        &self,
        sql: &str,
        options: &QueryOptions,
    ) -> Result<QueryOutcome, NraError> {
        let mut options = options.clone();
        options.session = self.id;
        self.db.execute_inner(sql, &options)
    }

    /// Validate `sql` now — parse it, and bind every block against the
    /// current catalog so name-resolution errors surface at prepare
    /// time — and remember it under `name` for
    /// [`Session::execute_prepared`]. Re-preparing a taken name
    /// replaces the old statement.
    ///
    /// The stored text is re-planned on execution (via the plan cache,
    /// so repeats are cheap), which keeps prepared statements valid
    /// across catalog changes as long as they still bind.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<(), NraError> {
        // `ANALYZE <table>` and `nra_sys.*` introspection statements
        // are dispatched before binding in the execute path; mirror
        // that here and accept them on parse alone.
        let is_analyze = nra_sql::parse_analyze(sql)?.is_some();
        if !is_analyze && !sys::mentions_sys(sql) {
            let query = nra_sql::parse_query(sql)?;
            let cat = self.db.catalog();
            nra_sql::bind(&query.first, &cat)?;
            for part in &query.compounds {
                nra_sql::bind(&part.stmt, &cat)?;
            }
        }
        self.prepared.insert(name.to_string(), sql.to_string());
        Ok(())
    }

    /// Execute the statement prepared under `name` with the session
    /// defaults.
    pub fn execute_prepared(&self, name: &str) -> Result<QueryOutcome, NraError> {
        let sql = self.prepared.get(name).ok_or_else(|| {
            NraError::Sql(SqlError::bind(format!(
                "no prepared statement named `{name}`"
            )))
        })?;
        self.execute(sql)
    }

    /// Drop the statement prepared under `name`; `false` if there was
    /// none.
    pub fn deallocate(&mut self, name: &str) -> bool {
        self.prepared.remove(name).is_some()
    }

    /// Names of the session's prepared statements, sorted.
    pub fn prepared_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.prepared.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

// Sessions move to connection threads; this is load-bearing for the
// TCP front end, so pin it at compile time.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Session>();
};
