//! The reserved `nra_sys` virtual schema: SQL-queryable introspection
//! tables materialized on demand from live observability state.
//!
//! A query whose `FROM` clauses reference any `nra_sys.*` table is
//! intercepted in [`Database::execute`](crate::Database::execute) and
//! re-run against an *overlay* catalog: snapshots of the referenced
//! system tables plus clones of whatever base tables the query also
//! names. The overlay query goes through the ordinary engine — parser,
//! binder, planner, the paper's nested relational strategies — so the
//! introspection surface dogfoods the system it introspects.
//!
//! Available tables:
//!
//! * `nra_sys.queries` — the bounded ring of completed queries from the
//!   process-wide [`queryreg`](nra_obs::queryreg) registry.
//! * `nra_sys.running` — currently-executing queries with their live
//!   progress snapshots (the future `SHOW PROCESSLIST`).
//! * `nra_sys.metrics` — the process-cumulative metrics registry.
//! * `nra_sys.table_stats` — per-column `ANALYZE` statistics of the
//!   *base* catalog (one row per analyzed column).
//! * `nra_sys.operators` — per-operator invocation/row totals pivoted
//!   from the global metrics counters.
//! * `nra_sys.plan_cache` — this database's entries in the process-wide
//!   plan cache (normalized statement, resolved strategy, hit count,
//!   schema version), in insertion order.
//!
//! Introspection queries run with the crate-private `introspection`
//! flag set, which excludes them from the query registry, progress
//! tracking and the slow-query log — querying `nra_sys.queries` must
//! not insert itself into `nra_sys.queries` (no self-recursion).

use std::collections::BTreeSet;

use crate::{plancache, Database, NraError, QueryOptions, QueryOutcome};
use nra_obs::metrics::{self, Metric};
use nra_obs::queryreg;
use nra_sql::{Predicate, Query, SelectStmt, SqlError};
use nra_storage::{Catalog, Column, ColumnType, Schema, Table, Tuple, Value};

/// The reserved schema prefix (with the trailing dot).
pub(crate) const PREFIX: &str = "nra_sys.";

/// Cheap textual gate: only queries that can possibly reference the
/// system schema pay the extra parse in [`dispatch`].
pub(crate) fn mentions_sys(sql: &str) -> bool {
    sql.to_ascii_lowercase().contains("nra_sys")
}

/// Intercept `sql` if it references any `nra_sys.*` table: build the
/// overlay catalog and execute against it. Returns `None` when the
/// query does not touch the system schema (including when it fails to
/// parse — the ordinary path owns error reporting).
pub(crate) fn dispatch(
    db: &Database,
    sql: &str,
    options: &QueryOptions,
) -> Option<Result<QueryOutcome, NraError>> {
    let query = nra_sql::parse_query(sql).ok()?;
    let tables = referenced_tables(&query);
    if !tables.iter().any(|t| t.starts_with(PREFIX)) {
        return None;
    }
    Some(run(db, sql, options, &tables))
}

fn run(
    db: &Database,
    sql: &str,
    options: &QueryOptions,
    tables: &BTreeSet<String>,
) -> Result<QueryOutcome, NraError> {
    let mut overlay = Catalog::new();
    for name in tables {
        let table = match name.strip_prefix(PREFIX) {
            Some(kind) => build_sys_table(db, name, kind)?,
            None => db.catalog().table(name)?.clone(),
        };
        overlay.add_table(table)?;
    }
    let mut opts = options.clone();
    opts.introspection = true;
    Database::from_catalog(overlay).execute(sql, &opts)
}

/// Every table name appearing in a `FROM` clause anywhere in the query,
/// subquery blocks included.
fn referenced_tables(query: &Query) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_stmt(&query.first, &mut out);
    for part in &query.compounds {
        collect_stmt(&part.stmt, &mut out);
    }
    out
}

fn collect_stmt(stmt: &SelectStmt, out: &mut BTreeSet<String>) {
    for t in &stmt.from {
        out.insert(t.table.clone());
    }
    if let Some(p) = &stmt.where_clause {
        collect_pred(p, out);
    }
}

fn collect_pred(p: &Predicate, out: &mut BTreeSet<String>) {
    match p {
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            collect_pred(a, out);
            collect_pred(b, out);
        }
        Predicate::Not(inner) => collect_pred(inner, out),
        Predicate::Exists { query, .. }
        | Predicate::InSubquery { query, .. }
        | Predicate::Quantified { query, .. }
        | Predicate::CmpSubquery { query, .. } => collect_stmt(query, out),
        Predicate::Cmp { .. }
        | Predicate::Between { .. }
        | Predicate::IsNull { .. }
        | Predicate::InList { .. } => {}
    }
}

fn build_sys_table(db: &Database, full_name: &str, kind: &str) -> Result<Table, NraError> {
    Ok(match kind {
        "queries" => queries_table(full_name),
        "running" => running_table(full_name),
        "metrics" => metrics_table(full_name),
        "table_stats" => table_stats_table(full_name, &db.catalog()),
        "operators" => operators_table(full_name),
        "plan_cache" => plan_cache_table(full_name, db),
        "wal" => wal_table(full_name, db),
        other => {
            return Err(NraError::Sql(SqlError::bind(format!(
                "unknown system table `nra_sys.{other}` \
                 (available: queries, running, metrics, table_stats, operators, plan_cache, wal)"
            ))))
        }
    })
}

/// Snapshots are small and built from already-synchronized state, so
/// the insert cannot fail; a schema/arity mismatch here is a bug.
fn fill(mut table: Table, rows: Vec<Tuple>) -> Table {
    table
        .insert_many(rows)
        .expect("system table rows match their schema");
    table
}

fn int(v: u64) -> Value {
    Value::Int(v as i64)
}

/// `nra_sys.queries`: the completed-query ring, oldest first.
fn queries_table(name: &str) -> Table {
    let table = Table::new(
        name,
        Schema::new(vec![
            Column::not_null("id", ColumnType::Int),
            Column::not_null("sql", ColumnType::Str),
            Column::not_null("outcome", ColumnType::Str),
            Column::not_null("wall_ms", ColumnType::Int),
            Column::not_null("rows", ColumnType::Int),
            Column::not_null("threads", ColumnType::Int),
            Column::not_null("qerror_x100", ColumnType::Int),
            Column::not_null("mem_bytes", ColumnType::Int),
            Column::not_null("strategy", ColumnType::Str),
            Column::not_null("session", ColumnType::Int),
        ]),
    );
    let rows = queryreg::global()
        .completed()
        .into_iter()
        .map(|r| {
            vec![
                int(r.id),
                Value::Str(r.sql),
                Value::Str(r.outcome),
                int(r.wall_ms),
                int(r.rows),
                int(r.threads),
                int(r.qerror_x100),
                int(r.mem_bytes),
                Value::Str(r.strategy),
                int(r.session),
            ]
        })
        .collect();
    fill(table, rows)
}

/// `nra_sys.plan_cache`: this database's plan-cache entries, oldest
/// first.
fn plan_cache_table(name: &str, db: &Database) -> Table {
    let table = Table::new(
        name,
        Schema::new(vec![
            Column::not_null("statement", ColumnType::Str),
            Column::not_null("strategy", ColumnType::Str),
            Column::not_null("hits", ColumnType::Int),
            Column::not_null("version", ColumnType::Int),
        ]),
    );
    let rows = plancache::snapshot_db(db.id())
        .into_iter()
        .map(|r| {
            vec![
                Value::Str(r.statement),
                Value::Str(r.strategy.to_string()),
                int(r.hits),
                int(r.version),
            ]
        })
        .collect();
    fill(table, rows)
}

/// `nra_sys.wal`: durability state of this database — one row for a
/// durable database (LSN watermarks, log size, recovery summary),
/// empty for an in-memory one.
fn wal_table(name: &str, db: &Database) -> Table {
    let table = Table::new(
        name,
        Schema::new(vec![
            Column::not_null("dir", ColumnType::Str),
            Column::not_null("last_lsn", ColumnType::Int),
            Column::not_null("snapshot_lsn", ColumnType::Int),
            Column::not_null("wal_bytes", ColumnType::Int),
            Column::not_null("records_since_checkpoint", ColumnType::Int),
            Column::not_null("poisoned", ColumnType::Bool),
            Column::not_null("recovered_records", ColumnType::Int),
            Column::not_null("dropped_records", ColumnType::Int),
            Column::not_null("repaired", ColumnType::Bool),
        ]),
    );
    let rows = match (db.durability(), db.recovery()) {
        (Some(info), Some(report)) => vec![vec![
            Value::Str(info.dir.display().to_string()),
            int(info.last_lsn),
            int(info.snapshot_lsn),
            int(info.wal_bytes),
            int(info.records_since_checkpoint),
            Value::Bool(info.poisoned),
            int(report.replayed),
            int(report.dropped_records),
            Value::Bool(report.repaired),
        ]],
        _ => Vec::new(),
    };
    fill(table, rows)
}

/// `nra_sys.running`: live queries with their current progress.
fn running_table(name: &str) -> Table {
    let table = Table::new(
        name,
        Schema::new(vec![
            Column::not_null("id", ColumnType::Int),
            Column::not_null("sql", ColumnType::Str),
            Column::not_null("phase", ColumnType::Str),
            Column::not_null("percent", ColumnType::Int),
            Column::not_null("rows_processed", ColumnType::Int),
            Column::not_null("rows_estimated", ColumnType::Int),
            Column::not_null("elapsed_ms", ColumnType::Int),
            Column::not_null("mem_bytes", ColumnType::Int),
        ]),
    );
    let rows = queryreg::global()
        .running()
        .into_iter()
        .map(|r| {
            let snap = r.progress.snapshot();
            vec![
                int(r.id),
                Value::Str(r.sql),
                Value::Str(snap.phase),
                int(snap.percent),
                int(snap.rows_processed),
                int(snap.rows_estimated),
                int(snap.elapsed_ms),
                int(snap.mem_bytes),
            ]
        })
        .collect();
    fill(table, rows)
}

/// `nra_sys.metrics`: the process-cumulative registry. `value` is the
/// counter/gauge value, or the sum for histograms; `count` is the
/// observation count for histograms, NULL otherwise.
fn metrics_table(name: &str) -> Table {
    let table = Table::new(
        name,
        Schema::new(vec![
            Column::not_null("name", ColumnType::Str),
            Column::not_null("labels", ColumnType::Str),
            Column::not_null("kind", ColumnType::Str),
            Column::not_null("value", ColumnType::Int),
            Column::new("count", ColumnType::Int),
        ]),
    );
    let snap = metrics::global().snapshot();
    let rows = snap
        .entries
        .iter()
        .map(|(key, metric)| {
            let labels = key
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            let (kind, value, count) = match metric {
                Metric::Counter(v) => ("counter", *v, Value::Null),
                Metric::Gauge(v) => ("gauge", *v, Value::Null),
                Metric::Hist { count, sum, .. } => ("histogram", *sum, int(*count)),
            };
            vec![
                Value::Str(key.name.clone()),
                Value::Str(labels),
                Value::Str(kind.to_string()),
                int(value),
                count,
            ]
        })
        .collect();
    fill(table, rows)
}

/// `nra_sys.table_stats`: one row per analyzed column of each base
/// table; tables never analyzed get a single row with NULL column
/// statistics (so they still show up with their row counts).
fn table_stats_table(name: &str, catalog: &Catalog) -> Table {
    let table = Table::new(
        name,
        Schema::new(vec![
            Column::not_null("table_name", ColumnType::Str),
            Column::not_null("row_count", ColumnType::Int),
            Column::new("column_name", ColumnType::Str),
            Column::new("ndv", ColumnType::Int),
            Column::new("null_count", ColumnType::Int),
        ]),
    );
    let mut rows = Vec::new();
    for tname in catalog.table_names() {
        let t = catalog.table(tname).expect("listed table exists");
        match t.stats() {
            Some(stats) => {
                for col in &stats.columns {
                    rows.push(vec![
                        Value::Str(tname.to_string()),
                        int(stats.row_count),
                        Value::Str(col.name.clone()),
                        int(col.ndv),
                        int(col.null_count),
                    ]);
                }
            }
            None => rows.push(vec![
                Value::Str(tname.to_string()),
                int(t.len() as u64),
                Value::Null,
                Value::Null,
                Value::Null,
            ]),
        }
    }
    fill(table, rows)
}

/// `nra_sys.operators`: per-operator totals pivoted from the global
/// `nra_op_*` counters (one row per `op` label).
fn operators_table(name: &str) -> Table {
    let table = Table::new(
        name,
        Schema::new(vec![
            Column::not_null("op", ColumnType::Str),
            Column::not_null("invocations", ColumnType::Int),
            Column::not_null("rows_in", ColumnType::Int),
            Column::not_null("rows_out", ColumnType::Int),
        ]),
    );
    use std::collections::BTreeMap;
    let mut by_op: BTreeMap<String, [u64; 3]> = BTreeMap::new();
    let snap = metrics::global().snapshot();
    for (key, metric) in &snap.entries {
        let slot = match key.name.as_str() {
            "nra_op_invocations_total" => 0,
            "nra_op_rows_in_total" => 1,
            "nra_op_rows_out_total" => 2,
            _ => continue,
        };
        let Metric::Counter(v) = metric else {
            continue;
        };
        let Some(op) = key
            .labels
            .iter()
            .find(|(k, _)| k.as_str() == "op")
            .map(|(_, v)| v.clone())
        else {
            continue;
        };
        by_op.entry(op).or_default()[slot] += *v;
    }
    let rows = by_op
        .into_iter()
        .map(|(op, totals)| {
            vec![
                Value::Str(op),
                int(totals[0]),
                int(totals[1]),
                int(totals[2]),
            ]
        })
        .collect();
    fill(table, rows)
}
