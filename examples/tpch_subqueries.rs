//! The paper's evaluation queries on generated TPC-H data, timed across
//! engines — a miniature of the Section 5 experiments.
//!
//! ```sh
//! cargo run --release --example tpch_subqueries [scale]
//! ```
//!
//! `scale` (default `0.05`) multiplies the paper-experiment table sizes.

use std::time::Instant;

use nra::{Database, Engine, QueryOptions, Session, Strategy};
use nra_tpch::{generate, q1_sql, q2_sql, q3_sql, ExistsKind, Q3Corr, Quant, TpchConfig};

fn time(session: &Session, sql: &str, engine: Engine) -> (usize, f64) {
    let start = Instant::now();
    let out = session
        .execute_with(sql, &QueryOptions::new().engine(engine))
        .expect("query runs");
    (out.rows.len(), start.elapsed().as_secs_f64())
}

fn run(session: &Session, label: &str, sql: &str) {
    println!("== {label}");
    let explain = session
        .execute_with(sql, &QueryOptions::new().explain_only(true))
        .unwrap();
    println!("   {}", explain.plan.unwrap());
    let engines = [
        ("baseline (System A)", Engine::Baseline),
        ("NR original", Engine::NestedRelational(Strategy::Original)),
        (
            "NR optimized",
            Engine::NestedRelational(Strategy::Optimized),
        ),
        ("NR auto", Engine::NestedRelational(Strategy::Auto)),
    ];
    let mut expected = None;
    for (name, engine) in engines {
        let (rows, secs) = time(session, sql, engine);
        match expected {
            None => expected = Some(rows),
            Some(e) => assert_eq!(e, rows, "engines disagree!"),
        }
        println!("   {name:<22} {secs:>8.4}s   ({rows} rows)");
    }
    println!();
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("generating TPC-H-shaped data at scale {scale} ...");
    let cfg = TpchConfig::scaled(scale);
    let db = Database::from_catalog(generate(&cfg));
    for t in ["orders", "lineitem", "part", "partsupp"] {
        println!("  {t}: {} rows", db.catalog().table(t).unwrap().len());
    }
    println!();
    let session = db.connect();

    let outer = (cfg.orders / 4).max(1);
    run(
        &session,
        "Query 1 (> ALL, one level)",
        &q1_sql(&db.catalog(), outer),
    );

    let part = (cfg.part / 4).max(1);
    let ps = (cfg.part * cfg.partsupp_per_part / 8).max(1);
    run(
        &session,
        "Query 2a (mixed ANY / NOT EXISTS, linear)",
        &q2_sql(&db.catalog(), Quant::Any, part, ps),
    );
    run(
        &session,
        "Query 2b (negative ALL / NOT EXISTS, linear)",
        &q2_sql(&db.catalog(), Quant::All, part, ps),
    );
    run(
        &session,
        "Query 3a(a) (mixed ALL / EXISTS, non-adjacent correlation)",
        &q3_sql(
            &db.catalog(),
            Quant::All,
            ExistsKind::Exists,
            Q3Corr::EqEq,
            part,
            ps,
        ),
    );
    run(
        &session,
        "Query 3b(a) (negative ALL / NOT EXISTS)",
        &q3_sql(
            &db.catalog(),
            Quant::All,
            ExistsKind::NotExists,
            Q3Corr::EqEq,
            part,
            ps,
        ),
    );
    run(
        &session,
        "Query 3c(a) (positive ANY / EXISTS)",
        &q3_sql(
            &db.catalog(),
            Quant::Any,
            ExistsKind::Exists,
            Q3Corr::EqEq,
            part,
            ps,
        ),
    );
}
