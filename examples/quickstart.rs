//! Quickstart: create tables, insert data (including NULLs), and run
//! nested subqueries through the nested relational engine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nra::storage::{Column, ColumnType, Value};
use nra::{Database, Engine, QueryOptions, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();

    // A tiny order-management schema.
    db.create_table(
        "customers",
        vec![
            Column::not_null("cid", ColumnType::Int),
            Column::not_null("name", ColumnType::Str),
            Column::new("credit_limit", ColumnType::Decimal),
        ],
        &["cid"],
    )?;
    db.create_table(
        "invoices",
        vec![
            Column::not_null("iid", ColumnType::Int),
            Column::not_null("cid", ColumnType::Int),
            Column::new("amount", ColumnType::Decimal),
        ],
        &["iid"],
    )?;

    db.insert(
        "customers",
        vec![
            vec![Value::Int(1), Value::str("ada"), Value::decimal(1000, 0)],
            vec![Value::Int(2), Value::str("grace"), Value::decimal(250, 0)],
            vec![Value::Int(3), Value::str("edsger"), Value::Null], // unknown limit
            vec![Value::Int(4), Value::str("barbara"), Value::decimal(500, 0)],
        ],
    )?;
    db.insert(
        "invoices",
        vec![
            vec![Value::Int(10), Value::Int(1), Value::decimal(900, 0)],
            vec![Value::Int(11), Value::Int(1), Value::decimal(90, 0)],
            vec![Value::Int(12), Value::Int(2), Value::decimal(300, 0)],
            vec![Value::Int(13), Value::Int(3), Value::decimal(100, 0)],
            vec![Value::Int(14), Value::Int(4), Value::Null], // amount in dispute
        ],
    )?;

    // Queries go through a session — the per-client handle the TCP
    // front end hands out one of per connection.
    let session = db.connect();

    // 1. Customers whose credit limit exceeds every single invoice they
    //    have — a correlated `> ALL` subquery, the case the paper shows
    //    commercial systems struggle to unnest.
    let sql_all = "select name from customers \
                   where credit_limit > all \
                     (select amount from invoices where invoices.cid = customers.cid)";
    println!("-- {sql_all}\n{}\n", session.execute(sql_all)?.rows);
    // ada: 1000 > {900, 90} -> yes. grace: 250 > {300} -> no.
    // edsger: NULL > {100} -> unknown -> no.
    // barbara: 500 > {NULL} -> unknown -> no (a disputed invoice blocks).

    // 2. Customers with no invoice at all (`NOT EXISTS` -> empty set).
    let sql_ne = "select name from customers \
                  where not exists (select * from invoices where invoices.cid = customers.cid)";
    println!("-- {sql_ne}\n{}\n", session.execute(sql_ne)?.rows);

    // 3. `NOT IN` with NULLs in the subquery result: one NULL amount makes
    //    the predicate unknown for every row — standard SQL, frequently
    //    surprising, handled uniformly here.
    let sql_ni = "select iid from invoices where amount not in \
                  (select amount from invoices i2 where i2.cid <> invoices.cid)";
    println!("-- {sql_ni}\n{}\n", session.execute(sql_ni)?.rows);

    // Every engine and strategy gives the same answer; `explain` shows
    // what each would do.
    let explain = session.execute_with(sql_all, &QueryOptions::new().explain_only(true))?;
    println!("explain: {}", explain.plan.unwrap());
    for engine in [
        Engine::Reference,
        Engine::Baseline,
        Engine::NestedRelational(Strategy::Original),
        Engine::NestedRelational(Strategy::Optimized),
    ] {
        let out = session.execute_with(sql_all, &QueryOptions::new().engine(engine))?;
        assert_eq!(out.rows.len(), 1, "all engines agree");
    }
    println!("\nall engines agree ✓");
    Ok(())
}
