//! EXPLAIN tour: the paper's tree expression (Figure 3a), the Algorithm-1
//! operator pipeline (Figure 3b) both static and measured (`EXPLAIN
//! ANALYZE`), and the aggregate-subquery extension.
//!
//! ```sh
//! cargo run --example explain_plans
//! ```

use nra::core::TreeExpr;
use nra::storage::{Column, ColumnType, Value};
use nra::{Database, QueryOptions, Session, Strategy};

fn show(session: &Session, sql: &str) {
    println!("== {sql}\n");
    let explain = session
        .execute_with(sql, &QueryOptions::new().explain_only(true))
        .unwrap();
    println!("{}", explain.plan.unwrap());
    let bq = session.database().prepare(sql).unwrap();
    let tree = TreeExpr::build(&bq);
    println!("\ntree expression (paper Fig. 3a):\n{tree}");
    println!("operator pipeline (paper Fig. 3b):\n{}", tree.render_plan());
    let analyzed = session
        .execute_with(
            sql,
            &QueryOptions::new()
                .strategy(Strategy::Original)
                .collect_profile(true)
                .simulate_io(true),
        )
        .unwrap();
    println!("explain analyze (measured):\n{}", analyzed.plan.unwrap());
    let out = session.execute(sql).unwrap();
    println!("result:\n{}\n", out.rows);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    db.create_table(
        "products",
        vec![
            Column::not_null("pid", ColumnType::Int),
            Column::not_null("category", ColumnType::Int),
            Column::new("price", ColumnType::Decimal),
        ],
        &["pid"],
    )?;
    db.create_table(
        "sales",
        vec![
            Column::not_null("sid", ColumnType::Int),
            Column::not_null("pid", ColumnType::Int),
            Column::new("qty", ColumnType::Int),
        ],
        &["sid"],
    )?;
    db.insert(
        "products",
        vec![
            vec![Value::Int(1), Value::Int(10), Value::decimal(19, 99)],
            vec![Value::Int(2), Value::Int(10), Value::decimal(5, 49)],
            vec![Value::Int(3), Value::Int(20), Value::Null],
            vec![Value::Int(4), Value::Int(20), Value::decimal(99, 0)],
        ],
    )?;
    db.insert(
        "sales",
        vec![
            vec![Value::Int(100), Value::Int(1), Value::Int(3)],
            vec![Value::Int(101), Value::Int(1), Value::Int(5)],
            vec![Value::Int(102), Value::Int(2), Value::Int(1)],
        ],
    )?;

    let session = db.connect();

    // A negative linking operator: the paper's headline case.
    show(
        &session,
        "select pid from products where price > all \
         (select price from products p2 where p2.category = products.category \
          and p2.pid <> products.pid)",
    );

    // Mixed operators over two levels.
    show(
        &session,
        "select pid from products where pid in \
         (select pid from sales where qty < some \
            (select qty from sales s2 where s2.pid = sales.pid))",
    );

    // The aggregate extension: unsold or barely-sold products, by COUNT —
    // note the empty set must compare as 0 (the classical count bug).
    show(
        &session,
        "select pid from products where 1 >= \
         (select count(*) from sales where sales.pid = products.pid)",
    );

    // ... and products priced above their category's average.
    show(
        &session,
        "select pid from products where price > \
         (select avg(price) from products p2 where p2.category = products.category)",
    );
    Ok(())
}
