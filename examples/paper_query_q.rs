//! A step-by-step walkthrough of the paper's Example 1/2 and Query Q
//! (Sections 2–4): the unnesting outer joins, the nest operator, and the
//! linking/pseudo-selections, printed at each stage.
//!
//! ```sh
//! cargo run --example paper_query_q
//! ```

use nra::core::linking::{LinkSelection, SetQuant};
use nra::core::nest::nest;
use nra::engine::planning::split_join_conds;
use nra::engine::{join, JoinSpec};
use nra::sql::parse_and_bind;
use nra::storage::CmpOp;
use nra::{Database, Engine, QueryOptions, Strategy};
use nra_engine::JoinKind;
use nra_tpch::paper_example::{rst_catalog, QUERY_Q};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cat = rst_catalog();

    println!("Query Q (paper, Section 2):\n  {QUERY_Q}\n");
    println!("Base relations (primary keys: r.d, s.i, t.l):");
    for name in ["r", "s", "t"] {
        println!("-- {name}\n{}\n", cat.table(name)?.data());
    }

    // ---- Algorithm 1 by hand -------------------------------------------
    // Step 1: reduce each block: T1 = σ_{a>1}(R), T2 = σ_{f=5}(S), T3 = T.
    let bq = parse_and_bind(QUERY_Q, &cat)?;
    let t1 = nra::engine::planning::block_base(&bq.root, &cat)?;
    let t2 = nra::engine::planning::block_base(&bq.root.children[0].block, &cat)?;
    let t3 = nra::engine::planning::block_base(&bq.root.children[0].block.children[0].block, &cat)?;
    println!("T1 = σ(r.a > 1)(R): {} tuples", t1.len());
    println!("T2 = σ(s.f = 5)(S): {} tuples", t2.len());
    println!("T3 = T: {} tuples\n", t3.len());

    // Step 2 (down): Temp1 = (T1 ⟕_{r.d = s.g} T2) ⟕_{t.k = r.c ∧ t.l ≠ s.i} T3.
    let s2 = &bq.root.children[0].block;
    let split12 = split_join_conds(&s2.correlated_preds, t1.schema(), t2.schema())?;
    let rel12 = join(
        &t1,
        &t2,
        &JoinSpec::new(JoinKind::LeftOuter, split12.eq, split12.residual),
    )?;
    let s3 = &s2.children[0].block;
    let split123 = split_join_conds(&s3.correlated_preds, rel12.schema(), t3.schema())?;
    let temp1 = join(
        &rel12,
        &t3,
        &JoinSpec::new(JoinKind::LeftOuter, split123.eq, split123.residual),
    )?;
    println!("Temp1 = (T1 ⟕ T2) ⟕ T3 — the unnested flat intermediate:");
    println!("{}\n", temp1);

    // Step 3 (up): Temp2 = υ nest by the R++S columns keeping T's.
    let temp2 = nest(
        &temp1,
        &[
            "r.a", "r.b", "r.c", "r.d", "s.e", "s.f", "s.g", "s.h", "s.i",
        ],
        &["t.j", "t.l"],
        "tset",
    )?;
    println!("Temp2 = υ(R,S-attrs),(t.j, t.l)(Temp1) — one tuple per (R,S) pair,");
    println!("        t.l (T's primary key) carried as the emptiness marker:");
    println!("{}\n", temp2);

    // Temp3 = σ̄ pseudo-selection for L2: s.h > ALL {t.j}, padding S's
    // attributes on failure (the NOT IN above still needs the R tuple!).
    let l2 = LinkSelection::quant("s.h", CmpOp::Gt, SetQuant::All, "t.j", Some("t.l"));
    let temp3 = l2
        .pseudo_select(&temp2, "tset", &["s.e", "s.f", "s.g", "s.h", "s.i"])?
        .atoms_as_relation();
    println!("Temp3 = σ̄(s.h > ALL {{t.j}}) — failing S tuples padded, not dropped:");
    println!("{}\n", temp3);

    // Temp4: nest by R's attributes keeping (s.e, s.i), then the plain
    // linking selection for L1: r.b <> ALL {s.e} (i.e. NOT IN).
    let temp4_nested = nest(
        &temp3,
        &["r.a", "r.b", "r.c", "r.d"],
        &["s.e", "s.i"],
        "sset",
    )?;
    println!("υ(R-attrs),(s.e, s.i)(Temp3):\n{}\n", temp4_nested);
    let l1 = LinkSelection::quant("r.b", CmpOp::Ne, SetQuant::All, "s.e", Some("s.i"));
    let temp4 = l1.select(&temp4_nested, "sset")?.atoms_as_relation();
    println!("Temp4 = σ(r.b <> ALL {{s.e}}) — the surviving R tuples:");
    println!("{}\n", temp4);

    // ---- The same thing through the engines ----------------------------
    let db = Database::from_catalog(rst_catalog());
    let explain = db.execute(QUERY_Q, &QueryOptions::new().explain_only(true))?;
    println!("explain: {}\n", explain.plan.unwrap());
    for (name, engine) in [
        ("oracle (tuple iteration)", Engine::Reference),
        ("baseline (System A plans)", Engine::Baseline),
        (
            "NR original (Algorithm 1)",
            Engine::NestedRelational(Strategy::Original),
        ),
        (
            "NR optimized (1 sort, pipelined)",
            Engine::NestedRelational(Strategy::Optimized),
        ),
    ] {
        let out = db.execute(QUERY_Q, &QueryOptions::new().engine(engine))?;
        println!("-- {name}\n{}\n", out.rows);
    }
    Ok(())
}
